module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec

(* One affine expression over the input variables. *)
type expr = { coeffs : Vec.t; const : float }

(* [conc] caches the tightest known concrete interval per neuron: the
   meet of the symbolic bounds' concretization and a plain box transfer.
   This guarantees the domain is never looser than {!Box_domain} even on
   neurons where the symbolic relaxation is weak (e.g. the [y >= x]
   lower bound of a crossing ReLU concretizes below zero). *)
type t = {
  input_box : Box_domain.t;
  lower : expr array;
  upper : expr array;
  conc : Interval.t array;
}

let dim t = Array.length t.lower
let input_dim t = Array.length t.input_box

(* Tightest concrete value of an affine expression over the input box:
   positive coefficients pull from the matching side of the box. *)
let concretize_lo box e =
  let acc = ref e.const in
  Array.iteri
    (fun j c ->
      let iv : Interval.t = box.(j) in
      acc := !acc +. if c >= 0.0 then c *. iv.Interval.lo else c *. iv.Interval.hi)
    e.coeffs;
  !acc

let concretize_hi box e =
  let acc = ref e.const in
  Array.iteri
    (fun j c ->
      let iv : Interval.t = box.(j) in
      acc := !acc +. if c >= 0.0 then c *. iv.Interval.hi else c *. iv.Interval.lo)
    e.coeffs;
  !acc

let to_box t = Array.copy t.conc

let of_box box =
  Array.iter
    (fun (iv : Interval.t) ->
      if not (Float.is_finite iv.Interval.lo && Float.is_finite iv.Interval.hi)
      then invalid_arg "Deeppoly.of_box: unbounded side")
    box;
  let d = Array.length box in
  let identity i =
    let coeffs = Vec.zeros d in
    coeffs.(i) <- 1.0;
    { coeffs; const = 0.0 }
  in
  {
    input_box = box;
    lower = Array.init d identity;
    upper = Array.init d identity;
    conc = Array.copy box;
  }

let scale_expr c e = { coeffs = Vec.scale c e.coeffs; const = c *. e.const }
let add_expr a b = { coeffs = Vec.add a.coeffs b.coeffs; const = a.const +. b.const }
let const_expr n c = { coeffs = Vec.zeros n; const = c }

(* Both arguments are sound enclosures, so their intersection is too;
   if float rounding makes them nominally disjoint — or a degenerate
   transfer left a nan side — keep whichever operand is still a
   well-formed interval. *)
let meet_safe box_iv expr_iv =
  let well_formed (iv : Interval.t) =
    (not (Float.is_nan iv.Interval.lo)) && not (Float.is_nan iv.Interval.hi)
  in
  match (well_formed box_iv, well_formed expr_iv) with
  | true, true -> (
      match Interval.meet box_iv expr_iv with
      | Some iv -> iv
      | None -> box_iv)
  | true, false -> box_iv
  | false, true -> expr_iv
  | false, false -> Interval.top

(* Finalize a transfer step: concretize the fresh symbolic bounds and
   intersect with the box-domain image of the previous concrete cache. *)
let rebuild t layer ~lower ~upper =
  let box_image = Box_domain.transfer_layer layer t.conc in
  let conc =
    Array.init (Array.length lower) (fun i ->
        let lo = concretize_lo t.input_box lower.(i) in
        let hi = concretize_hi t.input_box upper.(i) in
        let expr_iv =
          if lo <= hi then Interval.make ~lo ~hi else box_image.(i)
        in
        meet_safe box_image.(i) expr_iv)
  in
  { t with lower; upper; conc }

(* Affine combination: picking the lower expr for positive weights and
   the upper expr for negative ones yields a sound lower bound (and
   symmetrically for upper). *)
let affine_combine n ~weights_row ~bias ~lower ~upper =
  let lo = ref (const_expr n bias) and hi = ref (const_expr n bias) in
  Array.iteri
    (fun j w ->
      if w > 0.0 then begin
        lo := add_expr !lo (scale_expr w lower.(j));
        hi := add_expr !hi (scale_expr w upper.(j))
      end
      else if w < 0.0 then begin
        lo := add_expr !lo (scale_expr w upper.(j));
        hi := add_expr !hi (scale_expr w lower.(j))
      end)
    weights_row;
  (!lo, !hi)

let transfer_dense t layer weights bias =
  let n = input_dim t in
  let rows = Mat.rows weights in
  let lower = Array.make rows (const_expr n 0.0) in
  let upper = Array.make rows (const_expr n 0.0) in
  for i = 0 to rows - 1 do
    let lo, hi =
      affine_combine n ~weights_row:(Mat.row weights i) ~bias:bias.(i)
        ~lower:t.lower ~upper:t.upper
    in
    lower.(i) <- lo;
    upper.(i) <- hi
  done;
  rebuild t layer ~lower ~upper

let transfer_diag t layer scale shift =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let a = scale.(i) and b = shift.(i) in
    if Float.is_finite a && Float.is_finite b then begin
      let scaled_lo = scale_expr a t.lower.(i)
      and scaled_hi = scale_expr a t.upper.(i) in
      let lo, hi =
        if a >= 0.0 then (scaled_lo, scaled_hi) else (scaled_hi, scaled_lo)
      in
      lower.(i) <- { lo with const = lo.const +. b };
      upper.(i) <- { hi with const = hi.const +. b }
    end
    else begin
      (* A non-finite scale or shift would smear inf/nan coefficients
         over every downstream concretization; keep the neuron as an
         opaque constant interval instead, widening any nan side. *)
      let raw = Interval.add (Interval.scale a t.conc.(i)) (Interval.point b) in
      let lo = if Float.is_nan raw.Interval.lo then neg_infinity else raw.Interval.lo in
      let hi = if Float.is_nan raw.Interval.hi then infinity else raw.Interval.hi in
      let lo, hi = if lo <= hi then (lo, hi) else (neg_infinity, infinity) in
      lower.(i) <- const_expr n lo;
      upper.(i) <- const_expr n hi
    end
  done;
  rebuild t layer ~lower ~upper

(* DeepPoly ReLU bounds for one neuron.  With concrete pre-activation
   bounds [l, u]:
     u <= 0           -> y = 0
     l >= 0           -> y unchanged
     l < 0 < u        -> upper: y <= (u/(u-l)) (x - l), substituting x's
                         upper expression; lower: y >= x if u > -l (the
                         smaller-area choice) else y >= 0.
   The chord slope u/(u-l) goes non-finite when u - l overflows (huge
   bounds of opposite sign) and nan when the cached bounds are already
   poisoned; either way the symbolic relaxation would smear inf/nan
   coefficients over every downstream concretization, so the crossing
   case guards the slope and falls back to the box relaxation
   0 <= y <= u for that neuron. *)
let relu_neuron_bounds t n i =
  let { Interval.lo = l; hi = u } = t.conc.(i) in
  if u <= 0.0 then (const_expr n 0.0, const_expr n 0.0)
  else if l >= 0.0 then (t.lower.(i), t.upper.(i))
  else begin
    let denom = u -. l in
    let lambda = u /. denom in
    if Float.is_finite denom && denom > 0.0 && Float.is_finite lambda then begin
      let up = scale_expr lambda t.upper.(i) in
      let upper = { up with const = up.const -. (lambda *. l) } in
      let lower = if u > -.l then t.lower.(i) else const_expr n 0.0 in
      (lower, upper)
    end
    else (const_expr n 0.0, const_expr n u)
  end

let transfer_relu t =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let lo, hi = relu_neuron_bounds t n i in
    lower.(i) <- lo;
    upper.(i) <- hi
  done;
  rebuild t Layer.Relu ~lower ~upper

type phase = Active | Inactive | Unknown

exception Empty_region

(* ReLU transfer under externally-fixed phases (the branch-and-bound
   binary fixings).  [Inactive] asserts pre-activation x <= 0 (so
   y = 0); [Active] asserts x >= 0 (so y = x); [Unknown] neurons get
   the ordinary DeepPoly relaxation.  Returns [None] when a fixing
   contradicts the propagated pre-activation bounds — the abstract
   region is empty, so the search node carrying these fixings is
   infeasible.  The x = 0 boundary is feasible under either phase, so
   the contradiction tests are strict. *)
let transfer_relu_fixed phases t =
  let d = dim t in
  if Array.length phases <> d then
    invalid_arg "Deeppoly.transfer_relu_fixed: phase array dimension";
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  try
    for i = 0 to d - 1 do
      let { Interval.lo = l; hi = u } = t.conc.(i) in
      match phases.(i) with
      | Inactive ->
          if l > 0.0 then raise Empty_region;
          lower.(i) <- const_expr n 0.0;
          upper.(i) <- const_expr n 0.0
      | Active ->
          if u < 0.0 then raise Empty_region;
          lower.(i) <- t.lower.(i);
          upper.(i) <- t.upper.(i)
      | Unknown ->
          let lo, hi = relu_neuron_bounds t n i in
          lower.(i) <- lo;
          upper.(i) <- hi
    done;
    Some (rebuild t Layer.Relu ~lower ~upper)
  with Empty_region -> None

(* Smooth activations: fall back to the concrete interval image (sound,
   loses the symbolic information for those neurons). *)
let transfer_monotone t layer f =
  let d = dim t in
  let n = input_dim t in
  let lower = Array.make d (const_expr n 0.0) in
  let upper = Array.make d (const_expr n 0.0) in
  for i = 0 to d - 1 do
    let iv = t.conc.(i) in
    lower.(i) <- const_expr n (f iv.Interval.lo);
    upper.(i) <- const_expr n (f iv.Interval.hi)
  done;
  rebuild t layer ~lower ~upper

let rec transfer_layer layer t =
  match layer with
  | Layer.Conv2d _ -> transfer_layer (Layer.lower_to_dense layer) t
  | Layer.Dense { weights; bias } -> transfer_dense t layer weights bias
  | Layer.Relu -> transfer_relu t
  | Layer.Sigmoid ->
      transfer_monotone t layer (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Layer.Tanh -> transfer_monotone t layer tanh
  | Layer.Batch_norm _ -> (
      match Layer.batch_norm_scale_shift layer with
      | Some (scale, shift) -> transfer_diag t layer scale shift
      | None -> assert false)

let propagate net t =
  if dim t <> Network.input_dim net then
    invalid_arg "Deeppoly.propagate: wrong input dimension";
  List.fold_left (fun acc l -> transfer_layer l acc) t (Network.layers net)

let propagate_all net t =
  if dim t <> Network.input_dim net then
    invalid_arg "Deeppoly.propagate_all: wrong input dimension";
  let n = Network.num_layers net in
  let out = Array.make (n + 1) (to_box t) in
  let cur = ref t in
  for l = 1 to n do
    cur := transfer_layer (Network.layer net l) !cur;
    out.(l) <- to_box !cur
  done;
  out
