(** Unified entry point for static analysis of network prefixes.

    This is the "static analysis" leg of the paper's workflow: a sound
    over-approximation [S] of the values reachable at the cut layer [l]
    (Lemma 2), computed by pushing the input region through the prefix
    with the chosen abstract domain. *)

type domain = Box | Zonotope | Deeppoly

val domain_name : domain -> string
val domain_of_string : string -> domain option

val layer_bounds :
  domain ->
  Dpv_nn.Network.t ->
  input_box:Box_domain.t ->
  cut:int ->
  Box_domain.t
(** Interval enclosure of [f^(cut)] over the input box. *)

val all_layer_bounds :
  domain -> Dpv_nn.Network.t -> input_box:Box_domain.t -> Box_domain.t array
(** Enclosures at every layer (index 0 = input box); used to derive
    per-neuron big-M constants in the MILP encoding. *)

val output_bounds :
  domain -> Dpv_nn.Network.t -> input_box:Box_domain.t -> Box_domain.t
