type t = { lo : float; hi : float }

let make ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %g > hi %g" lo hi);
  { lo; hi }

let point x = { lo = x; hi = x }
let top = { lo = neg_infinity; hi = infinity }
let of_pair (lo, hi) = make ~lo ~hi
let width i = i.hi -. i.lo
let center i = 0.5 *. (i.lo +. i.hi)
let radius i = 0.5 *. (i.hi -. i.lo)
let contains i x = i.lo <= x && x <= i.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let scale c a =
  if c >= 0.0 then { lo = c *. a.lo; hi = c *. a.hi }
  else { lo = c *. a.hi; hi = c *. a.lo }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }

let relu a = { lo = Float.max 0.0 a.lo; hi = Float.max 0.0 a.hi }

let monotone f a = { lo = f a.lo; hi = f a.hi }

let sigmoid = monotone (fun x -> 1.0 /. (1.0 +. exp (-.x)))
let tanh_interval = monotone tanh

let dot coeffs xs =
  if Array.length coeffs <> Array.length xs then
    invalid_arg "Interval.dot: length mismatch";
  let acc = ref (point 0.0) in
  Array.iteri (fun i c -> acc := add !acc (scale c xs.(i))) coeffs;
  !acc

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.lo -. b.lo) <= tol && Float.abs (a.hi -. b.hi) <= tol

let pp fmt i = Format.fprintf fmt "[%g, %g]" i.lo i.hi
