module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

type t = Interval.t array

let of_bounds pairs = Array.map Interval.of_pair pairs

let uniform ~dim ~lo ~hi = Array.init dim (fun _ -> Interval.make ~lo ~hi)

let of_points points =
  if Array.length points = 0 then invalid_arg "Box_domain.of_points: empty";
  let mm = Dpv_tensor.Stats.columnwise_min_max points in
  Array.map Interval.of_pair mm

let contains box x =
  Array.length box = Vec.dim x
  &&
  let ok = ref true in
  Array.iteri (fun i iv -> if not (Interval.contains iv x.(i)) then ok := false) box;
  !ok

let widths = Array.map Interval.width
let mean_width box = Dpv_tensor.Stats.mean (widths box)

let sample rng box =
  Array.map
    (fun (iv : Interval.t) ->
      if Float.is_finite iv.lo && Float.is_finite iv.hi then
        Rng.uniform rng ~lo:iv.lo ~hi:iv.hi
      else invalid_arg "Box_domain.sample: unbounded side")
    box

let rec transfer_layer layer box =
  match layer with
  | Layer.Conv2d _ -> transfer_layer (Layer.lower_to_dense layer) box
  | Layer.Dense { weights; bias } ->
      Array.init (Mat.rows weights) (fun i ->
          Interval.add
            (Interval.dot (Mat.row weights i) box)
            (Interval.point bias.(i)))
  | Layer.Relu -> Array.map Interval.relu box
  | Layer.Sigmoid -> Array.map Interval.sigmoid box
  | Layer.Tanh -> Array.map Interval.tanh_interval box
  | Layer.Batch_norm _ -> (
      match Layer.batch_norm_scale_shift layer with
      | Some (scale, shift) ->
          Array.mapi
            (fun i iv ->
              Interval.add (Interval.scale scale.(i) iv) (Interval.point shift.(i)))
            box
      | None -> assert false)

let propagate net box =
  if Array.length box <> Network.input_dim net then
    invalid_arg "Box_domain.propagate: wrong input dimension";
  List.fold_left (fun acc l -> transfer_layer l acc) box (Network.layers net)

let propagate_all net box =
  if Array.length box <> Network.input_dim net then
    invalid_arg "Box_domain.propagate_all: wrong input dimension";
  let n = Network.num_layers net in
  let out = Array.make (n + 1) box in
  for l = 1 to n do
    out.(l) <- transfer_layer (Network.layer net l) out.(l - 1)
  done;
  out

let pp fmt box =
  Format.fprintf fmt "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Interval.pp)
    (Array.to_list box)
