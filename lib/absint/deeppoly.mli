(** Symbolic-bounds abstract domain (DeepPoly-style).

    Every neuron of the current layer carries two affine expressions over
    the *input* variables — a symbolic lower and upper bound — plus the
    input box to concretize them.  Affine layers transform the
    expressions exactly; ReLU uses the DeepPoly relaxation (upper chord
    [u(x-l)/(u-l)], lower [x] or [0] by minimal area), substituting the
    pre-activation's own symbolic bounds.

    Compared to the zonotope domain this keeps bound *direction*
    information per neuron rather than shared noise symbols; on typical
    ReLU networks the two are incomparable, so the library offers both
    (the paper's related work names box, octagon and zonotope; symbolic
    propagation is its reference [20]). *)

type t

val of_box : Box_domain.t -> t
(** Sides must be finite. *)

val dim : t -> int
val to_box : t -> Box_domain.t
(** Concretized per-neuron interval bounds. *)

val transfer_layer : Dpv_nn.Layer.t -> t -> t
val propagate : Dpv_nn.Network.t -> t -> t
val propagate_all : Dpv_nn.Network.t -> t -> Box_domain.t array
(** Interval enclosures at every layer (index 0 = the input box). *)
