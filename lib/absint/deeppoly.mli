(** Symbolic-bounds abstract domain (DeepPoly-style).

    Every neuron of the current layer carries two affine expressions over
    the *input* variables — a symbolic lower and upper bound — plus the
    input box to concretize them.  Affine layers transform the
    expressions exactly; ReLU uses the DeepPoly relaxation (upper chord
    [u(x-l)/(u-l)], lower [x] or [0] by minimal area), substituting the
    pre-activation's own symbolic bounds.

    Compared to the zonotope domain this keeps bound *direction*
    information per neuron rather than shared noise symbols; on typical
    ReLU networks the two are incomparable, so the library offers both
    (the paper's related work names box, octagon and zonotope; symbolic
    propagation is its reference [20]). *)

type t

val of_box : Box_domain.t -> t
(** Sides must be finite. *)

val dim : t -> int
val to_box : t -> Box_domain.t
(** Concretized per-neuron interval bounds. *)

val transfer_layer : Dpv_nn.Layer.t -> t -> t
val propagate : Dpv_nn.Network.t -> t -> t
val propagate_all : Dpv_nn.Network.t -> t -> Box_domain.t array
(** Interval enclosures at every layer (index 0 = the input box). *)

type phase = Active | Inactive | Unknown
(** One ReLU neuron's phase as fixed by an external search:
    [Active] asserts pre-activation [x >= 0] (so [y = x]), [Inactive]
    asserts [x <= 0] (so [y = 0]), [Unknown] leaves the ordinary
    DeepPoly relaxation in place. *)

val transfer_relu_fixed : phase array -> t -> t option
(** ReLU transfer under fixed phases, one entry per neuron of the
    current layer.  Returns [None] when a fixing contradicts the
    propagated pre-activation bounds (strictly: [Inactive] with
    [lo > 0], [Active] with [hi < 0]) — the abstract region is empty,
    so a branch-and-bound node carrying these fixings is infeasible.
    The [x = 0] boundary is feasible under either phase. *)

(** Resumable in-place propagation for callers that re-propagate the
    same network many times under slowly-changing phase fixings (the
    branch-and-bound guide).  A {!Resumable.state} keeps one
    preallocated buffer per layer; {!Resumable.propagate} re-runs only
    the layers past {!Resumable.valid}, and the caller rolls [valid]
    back with {!Resumable.invalidate_from} when a shallower fixing
    changes.

    Every kernel mirrors the immutable transfers above operation for
    operation — same accumulation order, same guards, same nan
    fallbacks — so a resumed propagation is bit-identical to a
    from-scratch one ([propagate] with all-[Unknown] phases matches
    {!propagate}; with fixings it matches folding
    {!transfer_relu_fixed}).  Steady-state propagation allocates
    nothing. *)
module Resumable : sig
  type plan
  (** Immutable per-network propagation recipe (Conv2d pre-lowered to
      dense).  Sharable across states and domains. *)

  type state
  (** Mutable per-instance buffers.  Not thread-safe; confine each
      state to one domain at a time. *)

  val plan : Dpv_nn.Network.t -> plan
  val num_layers : plan -> int

  val layer_dim : plan -> int -> int
  (** Output dimension of layer [l] ([layer_dim p 0] = input). *)

  val is_relu : plan -> int -> bool
  (** Whether 1-based layer [l] is a ReLU. *)

  val create : ?budget_floats:int -> plan -> Box_domain.t -> state
  (** Buffers for propagating [plan] from the given (finite-sided)
      input box.  [budget_floats] bounds the memory spent on cached
      layer states: layers are cached greedily from layer 1 while the
      running cost fits, deeper layers are evicted — recomputed through
      two alternating scratch slots on every call (still
      allocation-free, just without resumption past the cached
      prefix). *)

  val cached_layers : state -> int
  (** Deepest layer with a dedicated cache slot ([= num_layers] when
      nothing was evicted). *)

  val evicted_layers : state -> int
  (** Number of layer states dropped for the memory budget. *)

  val valid : state -> int
  (** Deepest cached layer whose state is current (0 after [create]:
      only the input layer). *)

  val invalidate_from : state -> int -> unit
  (** [invalidate_from st l] marks layers [>= l] stale (e.g. the phase
      fixings of ReLU layer [l] changed), so the next [propagate]
      resumes from [l]. *)

  val propagate : state -> phases:(int -> phase array) -> int
  (** Re-propagate layers [valid + 1 .. num_layers].  [phases l] is
      consulted for each ReLU layer [l] transferred and must return one
      phase per neuron; the engine guarantees layer [l - 1]'s bounds
      are readable (via {!conc_view}) when it asks, and only reads the
      array during the call.  Returns the number of layers transferred.
      When a fixing contradicts the propagated bounds the run stops at
      the contradicting layer, {!last_empty} turns true, and deeper
      states are invalid. *)

  val last_empty : state -> bool

  val conc_view : state -> layer:int -> float array * float array
  (** Borrowed [(lower, upper)] concrete bounds of a materialized
      layer; valid until the next [propagate].  Raises [Invalid_argument]
      for a layer that is neither validly cached nor just computed. *)

  val conc_lo : state -> layer:int -> int -> float
  val conc_hi : state -> layer:int -> int -> float

  val box_of_layer : state -> int -> Box_domain.t
  (** Fresh interval copy of a materialized layer's bounds. *)

  val output_box : state -> Box_domain.t
  (** [box_of_layer] at the last layer. *)
end
