(** Symbolic-bounds abstract domain (DeepPoly-style).

    Every neuron of the current layer carries two affine expressions over
    the *input* variables — a symbolic lower and upper bound — plus the
    input box to concretize them.  Affine layers transform the
    expressions exactly; ReLU uses the DeepPoly relaxation (upper chord
    [u(x-l)/(u-l)], lower [x] or [0] by minimal area), substituting the
    pre-activation's own symbolic bounds.

    Compared to the zonotope domain this keeps bound *direction*
    information per neuron rather than shared noise symbols; on typical
    ReLU networks the two are incomparable, so the library offers both
    (the paper's related work names box, octagon and zonotope; symbolic
    propagation is its reference [20]). *)

type t

val of_box : Box_domain.t -> t
(** Sides must be finite. *)

val dim : t -> int
val to_box : t -> Box_domain.t
(** Concretized per-neuron interval bounds. *)

val transfer_layer : Dpv_nn.Layer.t -> t -> t
val propagate : Dpv_nn.Network.t -> t -> t
val propagate_all : Dpv_nn.Network.t -> t -> Box_domain.t array
(** Interval enclosures at every layer (index 0 = the input box). *)

type phase = Active | Inactive | Unknown
(** One ReLU neuron's phase as fixed by an external search:
    [Active] asserts pre-activation [x >= 0] (so [y = x]), [Inactive]
    asserts [x <= 0] (so [y = 0]), [Unknown] leaves the ordinary
    DeepPoly relaxation in place. *)

val transfer_relu_fixed : phase array -> t -> t option
(** ReLU transfer under fixed phases, one entry per neuron of the
    current layer.  Returns [None] when a fixing contradicts the
    propagated pre-activation bounds (strictly: [Inactive] with
    [lo > 0], [Active] with [hi < 0]) — the abstract region is empty,
    so a branch-and-bound node carrying these fixings is infeasible.
    The [x = 0] boundary is feasible under either phase. *)
