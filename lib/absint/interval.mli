(** Closed real intervals for sound bound propagation. *)

type t = { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** Requires [lo <= hi]. *)

val point : float -> t
val top : t
(** [(-inf, +inf)]. *)

val of_pair : float * float -> t
val width : t -> float
val center : t -> float
val radius : t -> float
val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val join : t -> t -> t
val meet : t -> t -> t option
(** [None] when the intersection is empty. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val relu : t -> t
val monotone : (float -> float) -> t -> t
(** Image under a monotonically non-decreasing function. *)

val sigmoid : t -> t
val tanh_interval : t -> t

val dot : float array -> t array -> t
(** Interval dot product [sum_i c_i * x_i]. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
