module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network
module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec

(* generators.(k).(i) is the i-th coordinate of the k-th generator. *)
type t = { center : Vec.t; generators : Vec.t array }

let dim z = Vec.dim z.center
let num_generators z = Array.length z.generators

let of_box box =
  let d = Array.length box in
  let center = Array.map Interval.center box in
  let generators =
    Array.init d (fun k ->
        let g = Vec.zeros d in
        let r = Interval.radius box.(k) in
        if not (Float.is_finite r) then
          invalid_arg "Zonotope.of_box: unbounded side";
        g.(k) <- r;
        g)
  in
  { center; generators }

let concretize_bounds z ~dim:i =
  let r =
    Array.fold_left (fun acc g -> acc +. Float.abs g.(i)) 0.0 z.generators
  in
  Interval.make ~lo:(z.center.(i) -. r) ~hi:(z.center.(i) +. r)

let to_box z = Array.init (dim z) (fun i -> concretize_bounds z ~dim:i)

let affine_dense weights bias z =
  {
    center = Vec.add (Mat.matvec weights z.center) bias;
    generators = Array.map (Mat.matvec weights) z.generators;
  }

let affine_diag scale shift z =
  {
    center = Vec.init (dim z) (fun i -> (scale.(i) *. z.center.(i)) +. shift.(i));
    generators =
      Array.map
        (fun g -> Vec.init (dim z) (fun i -> scale.(i) *. g.(i)))
        z.generators;
  }

(* DeepZ ReLU: per dimension with bounds [l,u],
   - u <= 0: the output is constantly 0;
   - l >= 0: identity;
   - l < 0 < u: y = lambda*x + mu +/- mu with lambda = u/(u-l) and
     mu = -lambda*l/2, introducing one fresh generator per crossing
     dimension. *)
let relu z =
  let d = dim z in
  let bounds = Array.init d (fun i -> concretize_bounds z ~dim:i) in
  let center = Vec.copy z.center in
  let generators = Array.map Vec.copy z.generators in
  let fresh = ref [] in
  for i = 0 to d - 1 do
    let { Interval.lo = l; hi = u } = bounds.(i) in
    if u <= 0.0 then begin
      center.(i) <- 0.0;
      Array.iter (fun g -> g.(i) <- 0.0) generators
    end
    else if l < 0.0 then begin
      let lambda = u /. (u -. l) in
      let mu = -.lambda *. l /. 2.0 in
      center.(i) <- (lambda *. center.(i)) +. mu;
      Array.iter (fun g -> g.(i) <- lambda *. g.(i)) generators;
      let g_new = Vec.zeros d in
      g_new.(i) <- mu;
      fresh := g_new :: !fresh
    end
  done;
  { center; generators = Array.append generators (Array.of_list !fresh) }

(* Sound fallback for smooth activations: replace each dimension by an
   independent interval enclosure (kills correlations for that dim). *)
let pointwise_monotone f z =
  let box = to_box z in
  let image = Array.map (Interval.monotone f) box in
  let d = dim z in
  let center = Array.map Interval.center image in
  let generators =
    Array.to_list image
    |> List.mapi (fun i iv ->
           let g = Vec.zeros d in
           g.(i) <- Interval.radius iv;
           g)
    |> Array.of_list
  in
  { center; generators }

let rec transfer_layer layer z =
  match layer with
  | Layer.Conv2d _ -> transfer_layer (Layer.lower_to_dense layer) z
  | Layer.Dense { weights; bias } -> affine_dense weights bias z
  | Layer.Relu -> relu z
  | Layer.Sigmoid -> pointwise_monotone (fun x -> 1.0 /. (1.0 +. exp (-.x))) z
  | Layer.Tanh -> pointwise_monotone tanh z
  | Layer.Batch_norm _ -> (
      match Layer.batch_norm_scale_shift layer with
      | Some (scale, shift) -> affine_diag scale shift z
      | None -> assert false)

let propagate net z =
  if dim z <> Network.input_dim net then
    invalid_arg "Zonotope.propagate: wrong input dimension";
  List.fold_left (fun acc l -> transfer_layer l acc) z (Network.layers net)

let propagate_all net z =
  if dim z <> Network.input_dim net then
    invalid_arg "Zonotope.propagate_all: wrong input dimension";
  let n = Network.num_layers net in
  let out = Array.make (n + 1) (to_box z) in
  let cur = ref z in
  for l = 1 to n do
    cur := transfer_layer (Network.layer net l) !cur;
    out.(l) <- to_box !cur
  done;
  out
