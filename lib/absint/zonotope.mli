(** Zonotope abstract domain (affine forms).

    A zonotope is [{ c + G e | e in [-1,1]^k }]: a center plus noise-symbol
    generators.  Affine layers act exactly; ReLU uses the minimal-area
    parallelogram abstraction (DeepZ); sigmoid/tanh fall back to a sound
    per-dimension interval enclosure with a fresh generator.

    Zonotopes track linear correlations between neurons that the box
    domain loses, so downstream bounds are tighter — this is the second
    abstract domain named by the paper. *)

type t

val of_box : Box_domain.t -> t
(** One independent generator per dimension (sides must be finite). *)

val dim : t -> int
val num_generators : t -> int
val to_box : t -> Box_domain.t
(** Tightest per-dimension interval enclosure. *)

val concretize_bounds : t -> dim:int -> Interval.t

val transfer_layer : Dpv_nn.Layer.t -> t -> t
val propagate : Dpv_nn.Network.t -> t -> t
val propagate_all : Dpv_nn.Network.t -> t -> Box_domain.t array
(** Interval enclosures at every layer (index 0 = input), computed with
    zonotope precision internally. *)
