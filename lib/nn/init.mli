(** Weight initialization and common network shapes. *)

val he_dense : Dpv_tensor.Rng.t -> in_dim:int -> out_dim:int -> Layer.t
(** Dense layer with He-normal weights (std [sqrt(2/in_dim)]), zero bias —
    the standard choice before ReLU. *)

val xavier_dense : Dpv_tensor.Rng.t -> in_dim:int -> out_dim:int -> Layer.t
(** Dense layer with Xavier/Glorot-uniform weights — the standard choice
    before tanh/sigmoid or as output layer. *)

val mlp :
  Dpv_tensor.Rng.t ->
  input_dim:int ->
  hidden:int list ->
  output_dim:int ->
  Network.t
(** ReLU multi-layer perceptron with a linear output layer. *)

val mlp_batch_norm :
  Dpv_tensor.Rng.t ->
  input_dim:int ->
  hidden:int list ->
  output_dim:int ->
  Network.t
(** Like {!mlp} but with a batch-norm layer after each hidden dense layer
    (Dense -> BatchNorm -> ReLU), matching the paper's close-to-output
    layer structure. *)

val he_conv :
  Dpv_tensor.Rng.t -> shape:Layer.conv_shape -> Layer.t
(** Conv2d layer with He-normal kernel weights and zero bias. *)

val conv_net :
  Dpv_tensor.Rng.t ->
  in_height:int ->
  in_width:int ->
  channels:int list ->
  hidden:int list ->
  output_dim:int ->
  Network.t
(** Small CNN for single-channel images: a stride-2 3x3 Conv + ReLU block
    per entry of [channels] (padding 1), then a ReLU MLP head over the
    flattened feature map — the structural shape of a direct perception
    network. *)
