(** Feed-forward networks as layer sequences.

    Layer indices follow the paper: a network has layers [1 .. L]; the
    output of layer [l] on input [in] is [f^(l)(in)].  Index [0] denotes
    the input itself.  [prefix] / [suffix] split the network at a cut
    layer [l], which is the core abstraction of the verification workflow
    (analyze the suffix only, Lemma 1). *)

type t

val create : input_dim:int -> Layer.t list -> t
(** Validates the layer chain shape; raises [Invalid_argument] on
    mismatch. *)

val input_dim : t -> int
val output_dim : t -> int
val num_layers : t -> int
val layers : t -> Layer.t list
val layer : t -> int -> Layer.t
(** 1-based, as in the paper. *)

val dims : t -> int array
(** [dims net] has length [num_layers + 1]; entry [l] is the dimension of
    layer [l]'s output (entry 0 is the input dimension). *)

val forward : t -> Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t
(** [f^(L)]. *)

val forward_upto : t -> cut:int -> Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t
(** [forward_upto net ~cut x] is [f^(cut)(x)]; [cut = 0] returns [x]. *)

val activations : t -> Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t array
(** All intermediate values: index [l] holds [f^(l)(x)], index 0 the input. *)

val prefix : t -> cut:int -> t
(** Layers [1 .. cut] as a standalone network. *)

val suffix : t -> cut:int -> t
(** Layers [cut+1 .. L]; its input dimension is [d_cut]. *)

val append : t -> Layer.t -> t

(** [insert_layer net ~after:l layer] places [layer] between layers [l]
    and [l+1] (so it consumes [f^(l)]); [after = 0] prepends.  Shapes are
    re-validated. *)
val insert_layer : t -> after:int -> Layer.t -> t
val stack : t -> t -> t
(** [stack f g] runs [f] then [g]; output dim of [f] must match input dim
    of [g]. *)

val num_parameters : t -> int
val map_layers : t -> f:(Layer.t -> Layer.t) -> t
(** Shape-preserving layer rewrite (checked). *)

val is_piecewise_linear : t -> bool
(** All layers MILP-encodable exactly. *)

val pp : Format.formatter -> t -> unit
