module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec

type conv_shape = {
  in_channels : int;
  in_height : int;
  in_width : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
}

type t =
  | Dense of { weights : Mat.t; bias : Vec.t }
  | Conv2d of { shape : conv_shape; weights : Mat.t; bias : Vec.t }
  | Relu
  | Sigmoid
  | Tanh
  | Batch_norm of {
      gamma : Vec.t;
      beta : Vec.t;
      mean : Vec.t;
      var : Vec.t;
      eps : float;
    }

let conv_out_height s =
  ((s.in_height + (2 * s.padding) - s.kernel_h) / s.stride) + 1

let conv_out_width s =
  ((s.in_width + (2 * s.padding) - s.kernel_w) / s.stride) + 1

let conv_in_dim s = s.in_channels * s.in_height * s.in_width
let conv_out_dim s = s.out_channels * conv_out_height s * conv_out_width s

let sigmoid_scalar x = 1.0 /. (1.0 +. exp (-.x))

(* Direct convolution over the channel-major flat layout. *)
let conv_forward shape weights bias x =
  let oh = conv_out_height shape and ow = conv_out_width shape in
  let ih = shape.in_height and iw = shape.in_width in
  let out = Array.make (conv_out_dim shape) 0.0 in
  for oc = 0 to shape.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref bias.(oc) in
        for ic = 0 to shape.in_channels - 1 do
          for ky = 0 to shape.kernel_h - 1 do
            let y = (oy * shape.stride) + ky - shape.padding in
            if y >= 0 && y < ih then
              for kx = 0 to shape.kernel_w - 1 do
                let xpos = (ox * shape.stride) + kx - shape.padding in
                if xpos >= 0 && xpos < iw then
                  acc :=
                    !acc
                    +. Mat.get weights oc
                         ((ic * shape.kernel_h * shape.kernel_w)
                         + (ky * shape.kernel_w) + kx)
                       *. x.((ic * ih * iw) + (y * iw) + xpos)
              done
          done
        done;
        out.((oc * oh * ow) + (oy * ow) + ox) <- !acc
      done
    done
  done;
  out

let forward layer x =
  match layer with
  | Dense { weights; bias } -> Vec.add (Mat.matvec weights x) bias
  | Conv2d { shape; weights; bias } -> conv_forward shape weights bias x
  | Relu -> Vec.map (fun v -> Float.max 0.0 v) x
  | Sigmoid -> Vec.map sigmoid_scalar x
  | Tanh -> Vec.map tanh x
  | Batch_norm { gamma; beta; mean; var; eps } ->
      Vec.init (Vec.dim x) (fun i ->
          (gamma.(i) *. (x.(i) -. mean.(i)) /. sqrt (var.(i) +. eps))
          +. beta.(i))

let in_dim = function
  | Dense { weights; _ } -> Some (Mat.cols weights)
  | Conv2d { shape; _ } -> Some (conv_in_dim shape)
  | Batch_norm { gamma; _ } -> Some (Vec.dim gamma)
  | Relu | Sigmoid | Tanh -> None

let out_dim = function
  | Dense { weights; _ } -> Some (Mat.rows weights)
  | Conv2d { shape; _ } -> Some (conv_out_dim shape)
  | Batch_norm { gamma; _ } -> Some (Vec.dim gamma)
  | Relu | Sigmoid | Tanh -> None

let name = function
  | Dense _ -> "dense"
  | Conv2d _ -> "conv2d"
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Batch_norm _ -> "batchnorm"

let out_dim_given layer d =
  match in_dim layer with
  | Some expected when expected <> d ->
      invalid_arg
        (Printf.sprintf "Layer %s expects input dim %d, got %d" (name layer)
           expected d)
  | Some _ | None -> ( match out_dim layer with Some o -> o | None -> d)

let is_affine = function
  | Dense _ | Conv2d _ | Batch_norm _ -> true
  | Relu | Sigmoid | Tanh -> false

let is_piecewise_linear = function
  | Dense _ | Conv2d _ | Batch_norm _ | Relu -> true
  | Sigmoid | Tanh -> false

let batch_norm_scale_shift = function
  | Batch_norm { gamma; beta; mean; var; eps } ->
      let d = Vec.dim gamma in
      let scale = Vec.init d (fun i -> gamma.(i) /. sqrt (var.(i) +. eps)) in
      let shift = Vec.init d (fun i -> beta.(i) -. (scale.(i) *. mean.(i))) in
      Some (scale, shift)
  | Dense _ | Conv2d _ | Relu | Sigmoid | Tanh -> None

let dense ~weights ~bias =
  if Mat.rows weights <> Vec.dim bias then
    invalid_arg "Layer.dense: bias length must equal weight rows";
  Dense { weights; bias }

let conv2d ~shape ~weights ~bias =
  if
    shape.in_channels < 1 || shape.out_channels < 1 || shape.kernel_h < 1
    || shape.kernel_w < 1 || shape.stride < 1 || shape.padding < 0
  then invalid_arg "Layer.conv2d: bad geometry";
  if conv_out_height shape < 1 || conv_out_width shape < 1 then
    invalid_arg "Layer.conv2d: kernel does not fit the input";
  if
    Mat.rows weights <> shape.out_channels
    || Mat.cols weights <> shape.in_channels * shape.kernel_h * shape.kernel_w
  then invalid_arg "Layer.conv2d: weight matrix shape mismatch";
  if Vec.dim bias <> shape.out_channels then
    invalid_arg "Layer.conv2d: bias must have one entry per output channel";
  Conv2d { shape; weights; bias }

let batch_norm_identity d =
  Batch_norm
    {
      gamma = Vec.ones d;
      beta = Vec.zeros d;
      mean = Vec.zeros d;
      var = Vec.ones d;
      eps = 1e-5;
    }

(* Materialize the affine map of a conv layer as a dense matrix by
   scattering each kernel weight to its (output row, input column)
   positions. *)
let conv_to_dense shape weights bias =
  let oh = conv_out_height shape and ow = conv_out_width shape in
  let ih = shape.in_height and iw = shape.in_width in
  let m = Mat.zeros ~rows:(conv_out_dim shape) ~cols:(conv_in_dim shape) in
  let b = Array.make (conv_out_dim shape) 0.0 in
  for oc = 0 to shape.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let row = (oc * oh * ow) + (oy * ow) + ox in
        b.(row) <- bias.(oc);
        for ic = 0 to shape.in_channels - 1 do
          for ky = 0 to shape.kernel_h - 1 do
            let y = (oy * shape.stride) + ky - shape.padding in
            if y >= 0 && y < ih then
              for kx = 0 to shape.kernel_w - 1 do
                let xpos = (ox * shape.stride) + kx - shape.padding in
                if xpos >= 0 && xpos < iw then
                  Mat.set m row
                    ((ic * ih * iw) + (y * iw) + xpos)
                    (Mat.get weights oc
                       ((ic * shape.kernel_h * shape.kernel_w)
                       + (ky * shape.kernel_w) + kx))
              done
          done
        done
      done
    done
  done;
  Dense { weights = m; bias = b }

let lower_to_dense layer =
  match layer with
  | Dense _ -> layer
  | Conv2d { shape; weights; bias } -> conv_to_dense shape weights bias
  | Batch_norm { gamma; _ } -> (
      match batch_norm_scale_shift layer with
      | Some (scale, shift) ->
          let d = Vec.dim gamma in
          Dense
            {
              weights = Mat.init ~rows:d ~cols:d (fun i j -> if i = j then scale.(i) else 0.0);
              bias = shift;
            }
      | None -> assert false)
  | Relu | Sigmoid | Tanh ->
      invalid_arg
        (Printf.sprintf "Layer.lower_to_dense: %s is not affine" (name layer))

let pp fmt layer =
  match (layer, in_dim layer, out_dim layer) with
  | Conv2d { shape; _ }, _, _ ->
      Format.fprintf fmt "conv2d(%dx%dx%d->%dx%dx%d k%dx%d s%d p%d)"
        shape.in_channels shape.in_height shape.in_width shape.out_channels
        (conv_out_height shape) (conv_out_width shape) shape.kernel_h
        shape.kernel_w shape.stride shape.padding
  | _, Some i, Some o -> Format.fprintf fmt "%s(%d->%d)" (name layer) i o
  | _ -> Format.fprintf fmt "%s" (name layer)
