module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

let he_dense rng ~in_dim ~out_dim =
  let std = sqrt (2.0 /. float_of_int in_dim) in
  let weights =
    Mat.init ~rows:out_dim ~cols:in_dim (fun _ _ ->
        Rng.gaussian_scaled rng ~mean:0.0 ~std)
  in
  Layer.dense ~weights ~bias:(Vec.zeros out_dim)

let xavier_dense rng ~in_dim ~out_dim =
  let bound = sqrt (6.0 /. float_of_int (in_dim + out_dim)) in
  let weights =
    Mat.init ~rows:out_dim ~cols:in_dim (fun _ _ ->
        Rng.uniform rng ~lo:(-.bound) ~hi:bound)
  in
  Layer.dense ~weights ~bias:(Vec.zeros out_dim)

let build_mlp rng ~input_dim ~hidden ~output_dim ~with_bn =
  let rec go in_dim = function
    | [] -> [ xavier_dense rng ~in_dim ~out_dim:output_dim ]
    | h :: rest ->
        let dense = he_dense rng ~in_dim ~out_dim:h in
        let tail = go h rest in
        if with_bn then dense :: Layer.batch_norm_identity h :: Layer.Relu :: tail
        else dense :: Layer.Relu :: tail
  in
  Network.create ~input_dim (go input_dim hidden)

let mlp rng ~input_dim ~hidden ~output_dim =
  build_mlp rng ~input_dim ~hidden ~output_dim ~with_bn:false

let mlp_batch_norm rng ~input_dim ~hidden ~output_dim =
  build_mlp rng ~input_dim ~hidden ~output_dim ~with_bn:true

let he_conv rng ~(shape : Layer.conv_shape) =
  let fan_in =
    shape.Layer.in_channels * shape.Layer.kernel_h * shape.Layer.kernel_w
  in
  let std = sqrt (2.0 /. float_of_int fan_in) in
  let weights =
    Mat.init ~rows:shape.Layer.out_channels ~cols:fan_in (fun _ _ ->
        Rng.gaussian_scaled rng ~mean:0.0 ~std)
  in
  Layer.conv2d ~shape ~weights ~bias:(Vec.zeros shape.Layer.out_channels)

let conv_net rng ~in_height ~in_width ~channels ~hidden ~output_dim =
  let rec conv_blocks in_channels h w = function
    | [] -> ([], in_channels * h * w)
    | out_channels :: rest ->
        let shape =
          {
            Layer.in_channels;
            in_height = h;
            in_width = w;
            out_channels;
            kernel_h = 3;
            kernel_w = 3;
            stride = 2;
            padding = 1;
          }
        in
        let conv = he_conv rng ~shape in
        let oh = Layer.conv_out_height shape and ow = Layer.conv_out_width shape in
        let tail, flat_dim = conv_blocks out_channels oh ow rest in
        (conv :: Layer.Relu :: tail, flat_dim)
  in
  let blocks, flat_dim = conv_blocks 1 in_height in_width channels in
  let rec mlp_head in_dim = function
    | [] -> [ xavier_dense rng ~in_dim ~out_dim:output_dim ]
    | h :: rest -> he_dense rng ~in_dim ~out_dim:h :: Layer.Relu :: mlp_head h rest
  in
  Network.create ~input_dim:(in_height * in_width) (blocks @ mlp_head flat_dim hidden)
