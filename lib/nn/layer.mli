(** Feed-forward network layers.

    The layer set mirrors what the paper's verification needs: affine
    layers ([Dense], [Batch_norm]) and piecewise-linear / sigmoidal
    activations.  [Batch_norm] is in inference form — a per-dimension
    affine transform with stored statistics — which is exactly what the
    MILP encoding consumes; during training the statistics are updated as
    running averages (see {!Dpv_train}). *)

(** Convolution geometry.  Inputs and outputs are flat vectors in
    channel-major layout: index [c*(h*w) + y*w + x]. *)
type conv_shape = {
  in_channels : int;
  in_height : int;
  in_width : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;  (** symmetric zero padding *)
}

type t =
  | Dense of { weights : Dpv_tensor.Mat.t; bias : Dpv_tensor.Vec.t }
      (** [y = W x + b]; [W] is [out_dim x in_dim]. *)
  | Conv2d of {
      shape : conv_shape;
      weights : Dpv_tensor.Mat.t;
          (** [out_channels x (in_channels*kernel_h*kernel_w)]; row [oc],
              column [ic*kh*kw + ky*kw + kx]. *)
      bias : Dpv_tensor.Vec.t;  (** one per output channel *)
    }  (** 2-D convolution — an affine map, verified via {!lower_to_dense}. *)
  | Relu
  | Sigmoid
  | Tanh
  | Batch_norm of {
      gamma : Dpv_tensor.Vec.t;
      beta : Dpv_tensor.Vec.t;
      mean : Dpv_tensor.Vec.t;
      var : Dpv_tensor.Vec.t;
      eps : float;
    }  (** [y_i = gamma_i * (x_i - mean_i) / sqrt(var_i + eps) + beta_i]. *)

val forward : t -> Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t

val in_dim : t -> int option
(** [None] for shape-preserving activation layers. *)

val out_dim : t -> int option

val out_dim_given : t -> int -> int
(** Output dimension when fed an input of the given dimension; raises
    [Invalid_argument] on a shape mismatch. *)

val is_affine : t -> bool
(** True for layers that are affine maps ([Dense], [Batch_norm]). *)

val is_piecewise_linear : t -> bool
(** True for layers encodable exactly in a MILP ([Dense], [Batch_norm],
    [Relu]). *)

val batch_norm_scale_shift :
  t -> (Dpv_tensor.Vec.t * Dpv_tensor.Vec.t) option
(** For a [Batch_norm] layer, the equivalent per-dimension [(scale, shift)]
    pair with [y_i = scale_i * x_i + shift_i]; [None] otherwise. *)

val dense : weights:Dpv_tensor.Mat.t -> bias:Dpv_tensor.Vec.t -> t
(** Checked constructor: bias length must equal the weight row count. *)

val conv2d :
  shape:conv_shape -> weights:Dpv_tensor.Mat.t -> bias:Dpv_tensor.Vec.t -> t
(** Checked constructor: weight matrix must be
    [out_channels x (in_channels*kernel_h*kernel_w)], bias one per output
    channel, and the geometry must produce positive output dimensions. *)

val conv_out_height : conv_shape -> int
val conv_out_width : conv_shape -> int

val lower_to_dense : t -> t
(** The equivalent [Dense] layer of an affine layer ([Conv2d] is
    materialized as its — sparse but stored dense — matrix; [Dense] is
    returned as-is; [Batch_norm] becomes its diagonal matrix).  Raises
    [Invalid_argument] on non-affine layers.  Used by the abstract
    domains and the MILP encoder, which only understand matrices. *)

val batch_norm_identity : int -> t
(** Fresh batch-norm layer with gamma=1, beta=0, mean=0, var=1. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
