module Vec = Dpv_tensor.Vec

type t = { input_dim : int; layer_arr : Layer.t array; dims : int array }

let compute_dims ~input_dim layer_arr =
  let n = Array.length layer_arr in
  let dims = Array.make (n + 1) input_dim in
  for l = 1 to n do
    dims.(l) <- Layer.out_dim_given layer_arr.(l - 1) dims.(l - 1)
  done;
  dims

let create ~input_dim layer_list =
  if input_dim <= 0 then invalid_arg "Network.create: input_dim <= 0";
  let layer_arr = Array.of_list layer_list in
  let dims = compute_dims ~input_dim layer_arr in
  { input_dim; layer_arr; dims }

let input_dim net = net.input_dim
let output_dim net = net.dims.(Array.length net.layer_arr)
let num_layers net = Array.length net.layer_arr
let layers net = Array.to_list net.layer_arr

let layer net l =
  if l < 1 || l > num_layers net then invalid_arg "Network.layer: out of range";
  net.layer_arr.(l - 1)

let dims net = Array.copy net.dims

let forward net x =
  if Vec.dim x <> net.input_dim then
    invalid_arg
      (Printf.sprintf "Network.forward: expected input dim %d, got %d"
         net.input_dim (Vec.dim x));
  Array.fold_left (fun acc l -> Layer.forward l acc) x net.layer_arr

let check_cut net cut =
  if cut < 0 || cut > num_layers net then
    invalid_arg (Printf.sprintf "Network: cut layer %d out of range" cut)

let forward_upto net ~cut x =
  check_cut net cut;
  let acc = ref x in
  for l = 0 to cut - 1 do
    acc := Layer.forward net.layer_arr.(l) !acc
  done;
  !acc

let activations net x =
  let n = num_layers net in
  let out = Array.make (n + 1) x in
  for l = 1 to n do
    out.(l) <- Layer.forward net.layer_arr.(l - 1) out.(l - 1)
  done;
  out

let prefix net ~cut =
  check_cut net cut;
  {
    input_dim = net.input_dim;
    layer_arr = Array.sub net.layer_arr 0 cut;
    dims = Array.sub net.dims 0 (cut + 1);
  }

let suffix net ~cut =
  check_cut net cut;
  let n = num_layers net in
  {
    input_dim = net.dims.(cut);
    layer_arr = Array.sub net.layer_arr cut (n - cut);
    dims = Array.sub net.dims cut (n - cut + 1);
  }

let insert_layer net ~after l =
  check_cut net after;
  let before = Array.sub net.layer_arr 0 after in
  let rest =
    Array.sub net.layer_arr after (Array.length net.layer_arr - after)
  in
  let layer_arr = Array.concat [ before; [| l |]; rest ] in
  {
    net with
    layer_arr;
    dims = compute_dims ~input_dim:net.input_dim layer_arr;
  }

let append net l =
  let layer_arr = Array.append net.layer_arr [| l |] in
  {
    net with
    layer_arr;
    dims = compute_dims ~input_dim:net.input_dim layer_arr;
  }

let stack f g =
  if output_dim f <> input_dim g then
    invalid_arg
      (Printf.sprintf "Network.stack: %d-dim output vs %d-dim input"
         (output_dim f) (input_dim g));
  let layer_arr = Array.append f.layer_arr g.layer_arr in
  { f with layer_arr; dims = compute_dims ~input_dim:f.input_dim layer_arr }

let num_parameters net =
  Array.fold_left
    (fun acc l ->
      match l with
      | Layer.Dense { weights; bias } | Layer.Conv2d { weights; bias; _ } ->
          acc
          + (Dpv_tensor.Mat.rows weights * Dpv_tensor.Mat.cols weights)
          + Vec.dim bias
      | Layer.Batch_norm { gamma; beta; _ } -> acc + Vec.dim gamma + Vec.dim beta
      | Layer.Relu | Layer.Sigmoid | Layer.Tanh -> acc)
    0 net.layer_arr

let map_layers net ~f =
  let layer_arr = Array.map f net.layer_arr in
  let dims = compute_dims ~input_dim:net.input_dim layer_arr in
  if dims <> net.dims then invalid_arg "Network.map_layers: shape changed";
  { net with layer_arr }

let is_piecewise_linear net =
  Array.for_all Layer.is_piecewise_linear net.layer_arr

let pp fmt net =
  Format.fprintf fmt "@[<h>net(%d" net.input_dim;
  Array.iter (fun l -> Format.fprintf fmt " -> %a" Layer.pp l) net.layer_arr;
  Format.fprintf fmt ")@]"
