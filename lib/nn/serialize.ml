module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec

(* Format:
     dpv-network 1
     input_dim <d>
     layers <n>
     dense <out> <in>
       <out> lines of <in> hex floats      (weight rows)
       1 line of <out> hex floats          (bias)
     relu | sigmoid | tanh
     batchnorm <d> <eps-hex>
       4 lines of <d> hex floats           (gamma beta mean var)       *)

let float_to_text = Printf.sprintf "%h"

let vec_to_line v =
  String.concat " " (List.map float_to_text (Vec.to_list v))

let to_string net =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "dpv-network 1";
  line "input_dim %d" (Network.input_dim net);
  line "layers %d" (Network.num_layers net);
  List.iter
    (fun l ->
      match l with
      | Layer.Dense { weights; bias } ->
          line "dense %d %d" (Mat.rows weights) (Mat.cols weights);
          for i = 0 to Mat.rows weights - 1 do
            line "%s" (vec_to_line (Mat.row weights i))
          done;
          line "%s" (vec_to_line bias)
      | Layer.Conv2d { shape; weights; bias } ->
          line "conv2d %d %d %d %d %d %d %d %d" shape.Layer.in_channels
            shape.Layer.in_height shape.Layer.in_width shape.Layer.out_channels
            shape.Layer.kernel_h shape.Layer.kernel_w shape.Layer.stride
            shape.Layer.padding;
          for i = 0 to Mat.rows weights - 1 do
            line "%s" (vec_to_line (Mat.row weights i))
          done;
          line "%s" (vec_to_line bias)
      | Layer.Relu -> line "relu"
      | Layer.Sigmoid -> line "sigmoid"
      | Layer.Tanh -> line "tanh"
      | Layer.Batch_norm { gamma; beta; mean; var; eps } ->
          line "batchnorm %d %s" (Vec.dim gamma) (float_to_text eps);
          line "%s" (vec_to_line gamma);
          line "%s" (vec_to_line beta);
          line "%s" (vec_to_line mean);
          line "%s" (vec_to_line var))
    (Network.layers net);
  Buffer.contents buf

type cursor = { lines : string array; mutable pos : int }

let next_line cur =
  let rec go () =
    if cur.pos >= Array.length cur.lines then
      failwith "Serialize: unexpected end of input";
    let l = String.trim cur.lines.(cur.pos) in
    cur.pos <- cur.pos + 1;
    if l = "" then go () else l
  in
  go ()

let parse_floats line expected =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  if List.length parts <> expected then
    failwith
      (Printf.sprintf "Serialize: expected %d floats, got %d" expected
         (List.length parts));
  Array.of_list (List.map float_of_string parts)

let of_string s =
  let cur = { lines = Array.of_list (String.split_on_char '\n' s); pos = 0 } in
  (match String.split_on_char ' ' (next_line cur) with
  | [ "dpv-network"; "1" ] -> ()
  | _ -> failwith "Serialize: bad magic line");
  let input_dim =
    match String.split_on_char ' ' (next_line cur) with
    | [ "input_dim"; d ] -> int_of_string d
    | _ -> failwith "Serialize: expected input_dim"
  in
  let n_layers =
    match String.split_on_char ' ' (next_line cur) with
    | [ "layers"; n ] -> int_of_string n
    | _ -> failwith "Serialize: expected layers count"
  in
  let read_layer () =
    let header = next_line cur in
    match String.split_on_char ' ' header with
    | [ "dense"; rows; cols ] ->
        let rows = int_of_string rows and cols = int_of_string cols in
        let weight_rows =
          Array.init rows (fun _ -> parse_floats (next_line cur) cols)
        in
        let bias = parse_floats (next_line cur) rows in
        Layer.dense ~weights:(Mat.of_rows weight_rows) ~bias
    | [ "conv2d"; ic; ih; iw; oc; kh; kw; st; pad ] ->
        let shape =
          {
            Layer.in_channels = int_of_string ic;
            in_height = int_of_string ih;
            in_width = int_of_string iw;
            out_channels = int_of_string oc;
            kernel_h = int_of_string kh;
            kernel_w = int_of_string kw;
            stride = int_of_string st;
            padding = int_of_string pad;
          }
        in
        let cols =
          shape.Layer.in_channels * shape.Layer.kernel_h * shape.Layer.kernel_w
        in
        let weight_rows =
          Array.init shape.Layer.out_channels (fun _ ->
              parse_floats (next_line cur) cols)
        in
        let bias = parse_floats (next_line cur) shape.Layer.out_channels in
        Layer.conv2d ~shape ~weights:(Mat.of_rows weight_rows) ~bias
    | [ "relu" ] -> Layer.Relu
    | [ "sigmoid" ] -> Layer.Sigmoid
    | [ "tanh" ] -> Layer.Tanh
    | [ "batchnorm"; d; eps ] ->
        let d = int_of_string d and eps = float_of_string eps in
        let gamma = parse_floats (next_line cur) d in
        let beta = parse_floats (next_line cur) d in
        let mean = parse_floats (next_line cur) d in
        let var = parse_floats (next_line cur) d in
        Layer.Batch_norm { gamma; beta; mean; var; eps }
    | _ -> failwith (Printf.sprintf "Serialize: unknown layer %S" header)
  in
  let layers = List.init n_layers (fun _ -> read_layer ()) in
  Network.create ~input_dim layers

let save net ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
