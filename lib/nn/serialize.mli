(** Text (de)serialization of networks.

    Replaces the TensorFlow model reader of the paper's tool: trained
    models move between the training side and the verification side
    through this format.  The format is line-oriented, human-inspectable
    and round-trips exactly ([%h] hex floats). *)

val to_string : Network.t -> string
val of_string : string -> Network.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val save : Network.t -> path:string -> unit
val load : path:string -> Network.t
