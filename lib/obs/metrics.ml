(* Global always-on registry.  Registration (the [counter]/[gauge]/
   [histogram] constructors) happens once per metric at module-init
   time under a mutex; the hot-path operations ([incr], [observe],
   [set_max]) are single atomic read-modify-writes on preallocated
   cells — no allocation, no locking, no formatting. *)

type counter = { c_name : string; c_cell : int Atomic.t }

(* Two gauge kinds share one cell layout but mean different things
   across processes: a high-water mark can be maxed when shard
   snapshots merge, while a sampled rate is only meaningful in the
   process that computed it — summing (or maxing) rates from
   sequentially-run shards fabricates throughput that never existed.
   The kind rides the snapshot and the JSON so downstream mergers can
   tell them apart. *)
type gauge_kind = High_water | Sampled

type gauge = { g_name : string; g_kind : gauge_kind; g_cell : int Atomic.t }

(* Log2 buckets over nanoseconds: bucket [i] counts observations v with
   2^(i-1) < v <= 2^i (bucket 0 catches <= 1 ns).  63 buckets cover the
   whole non-negative int range, so no observation is ever dropped. *)
let n_buckets = 63

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_buckets : int Atomic.t array;
}

let registry_lock = Mutex.create ()
let counters : counter list ref = ref []
let gauges : gauge list ref = ref []
let histograms : histogram list ref = ref []

let registered find add name =
  Mutex.protect registry_lock (fun () ->
      match find name with Some x -> x | None -> add name)

let counter name =
  registered
    (fun n -> List.find_opt (fun c -> c.c_name = n) !counters)
    (fun n ->
      let c = { c_name = n; c_cell = Atomic.make 0 } in
      counters := c :: !counters;
      c)
    name

let gauge_of_kind kind name =
  registered
    (fun n -> List.find_opt (fun g -> g.g_name = n) !gauges)
    (fun n ->
      let g = { g_name = n; g_kind = kind; g_cell = Atomic.make 0 } in
      gauges := g :: !gauges;
      g)
    name

let gauge name = gauge_of_kind High_water name
let sample name = gauge_of_kind Sampled name

let histogram name =
  registered
    (fun n -> List.find_opt (fun h -> h.h_name = n) !histograms)
    (fun n ->
      let h =
        {
          h_name = n;
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
        }
      in
      histograms := h :: !histograms;
      h)
    name

let incr c n = ignore (Atomic.fetch_and_add c.c_cell n)
let counter_value c = Atomic.get c.c_cell

(* Monotonic high-water mark: campaigns want "the deepest the queue
   ever got", not a last-writer-wins sample. *)
let set_max g v =
  let rec go () =
    let prev = Atomic.get g.g_cell in
    if v <= prev then ()
    else if Atomic.compare_and_set g.g_cell prev v then ()
    else go ()
  in
  go ()

let gauge_value g = Atomic.get g.g_cell

(* Last-writer-wins sample, for gauges fed by the background sampler
   (queue depth right now, jobs in system right now).  Stored in
   milli-units so every [snap_rates] value — point sample or windowed
   rate — shares one convention and renderers divide by 1000 once. *)
let set g v = Atomic.set g.g_cell (v * 1000)

(* ---------------- rolling-window rate gauges ---------------- *)

(* A rate gauge turns a cumulative series (a counter's value, GC minor
   words) into events-per-second over a rolling window.  [tick] is
   called off the hot path — by the sampler domain, on its own clock —
   so a plain mutex-guarded deque of (ts, cumulative) samples is fine.
   The published value is milli-events/second: integer gauges cannot
   carry fractions and per-second rates of slow counters would round
   to zero. *)
type rate = {
  r_gauge : gauge;
  r_window_ns : int;
  r_lock : Mutex.t;
  mutable r_samples : (int * int) list;  (* (now_ns, cumulative), newest first *)
}

let rate ?(window_s = 10.0) name =
  {
    r_gauge = sample name;
    r_window_ns = int_of_float (window_s *. 1e9);
    r_lock = Mutex.create ();
    r_samples = [];
  }

let rate_tick r ~now_ns cumulative =
  Mutex.protect r.r_lock (fun () ->
      (* Keep everything inside the window plus one older sample as the
         baseline, so a freshly-full window still spans ~window_s. *)
      let rec trim = function
        | a :: (b :: _ as rest) when now_ns - fst b > r.r_window_ns ->
            ignore a;
            trim rest
        | kept -> kept
      in
      r.r_samples <- (now_ns, cumulative) :: r.r_samples;
      r.r_samples <- List.rev (trim (List.rev r.r_samples));
      match (r.r_samples, List.rev r.r_samples) with
      | (t1, v1) :: _, (t0, v0) :: _ when t1 > t0 ->
          let per_s = float_of_int (v1 - v0) *. 1e9 /. float_of_int (t1 - t0) in
          Atomic.set r.r_gauge.g_cell
            (int_of_float (Float.max 0.0 (per_s *. 1000.0)))
      | _ -> ())

let rate_value r = Atomic.get r.r_gauge.g_cell

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* Position of the highest set bit = ceil(log2) for powers of two,
       floor+1 otherwise — exactly the (2^(i-1), 2^i] bucket. *)
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    Stdlib.min (n_buckets - 1) (bits 0 (v - 1))
  end

let observe h v =
  let v = Stdlib.max 0 v in
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v);
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1)

let bucket_upper i = if i >= 62 then max_int else 1 lsl i

(* ---------------- snapshots ---------------- *)

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;  (* (upper bound inclusive, count), nonzero *)
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;     (* high-water gauges only *)
  snap_rates : (string * int) list;      (* sampled gauges (milli-units) *)
  snap_histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let of_kind k =
        List.filter_map
          (fun g ->
            if g.g_kind = k then Some (g.g_name, Atomic.get g.g_cell) else None)
          !gauges
      in
      {
        snap_counters =
          List.sort by_name
            (List.map (fun c -> (c.c_name, Atomic.get c.c_cell)) !counters);
        snap_gauges = List.sort by_name (of_kind High_water);
        snap_rates = List.sort by_name (of_kind Sampled);
        snap_histograms =
          List.sort by_name
            (List.map
               (fun h ->
                 let buckets = ref [] in
                 Array.iteri
                   (fun i b ->
                     let n = Atomic.get b in
                     if n > 0 then buckets := (bucket_upper i, n) :: !buckets)
                   h.h_buckets;
                 ( h.h_name,
                   {
                     count = Atomic.get h.h_count;
                     sum = Atomic.get h.h_sum;
                     buckets = List.rev !buckets;
                   } ))
               !histograms);
      })

(* What happened between two snapshots of the same process.  Counters
   and histogram totals subtract (a metric absent at [before] counts
   from zero); gauges are high-water marks (and rates are point
   samples), for which subtraction is meaningless, so the [after]
   value is reported for both. *)
let since ~before after =
  let base l name = Option.value (List.assoc_opt name l) ~default:0 in
  let sub_buckets before_b after_b =
    List.filter_map
      (fun (up, n) ->
        let d = n - Option.value (List.assoc_opt up before_b) ~default:0 in
        if d > 0 then Some (up, d) else None)
      after_b
  in
  {
    snap_counters =
      List.map
        (fun (name, v) -> (name, v - base before.snap_counters name))
        after.snap_counters;
    snap_gauges = after.snap_gauges;
    snap_rates = after.snap_rates;
    snap_histograms =
      List.map
        (fun (name, h) ->
          match List.assoc_opt name before.snap_histograms with
          | None -> (name, h)
          | Some hb ->
              ( name,
                {
                  count = h.count - hb.count;
                  sum = h.sum - hb.sum;
                  buckets = sub_buckets hb.buckets h.buckets;
                } ))
        after.snap_histograms;
  }

let empty_snapshot =
  { snap_counters = []; snap_gauges = []; snap_rates = []; snap_histograms = [] }

(* Combine snapshots from different processes — campaign shards whose
   journals are being merged into one report.  Counters and histogram
   totals add (the shards did disjoint work), gauges take the max (a
   high-water mark across processes is the highest any of them saw),
   and histogram buckets merge bucket-wise.  Both inputs keep their
   name-sorted invariant, so the result does too. *)
let merge a b =
  let rec merge_assoc combine xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (xn, xv) :: xrest, (yn, yv) :: yrest ->
        let c = compare (xn : string) yn in
        if c < 0 then (xn, xv) :: merge_assoc combine xrest ys
        else if c > 0 then (yn, yv) :: merge_assoc combine xs yrest
        else (xn, combine xv yv) :: merge_assoc combine xrest yrest
  in
  let rec merge_buckets xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (xu, xn) :: xrest, (yu, yn) :: yrest ->
        if xu < yu then (xu, xn) :: merge_buckets xrest ys
        else if xu > yu then (yu, yn) :: merge_buckets xs yrest
        else (xu, xn + yn) :: merge_buckets xrest yrest
  in
  {
    snap_counters = merge_assoc ( + ) a.snap_counters b.snap_counters;
    snap_gauges = merge_assoc Stdlib.max a.snap_gauges b.snap_gauges;
    (* Rates never sum: shards usually ran sequentially, so adding
       their throughputs would fabricate parallelism.  Max is the
       conservative "highest rate any shard sustained". *)
    snap_rates = merge_assoc Stdlib.max a.snap_rates b.snap_rates;
    snap_histograms =
      merge_assoc
        (fun x y ->
          {
            count = x.count + y.count;
            sum = x.sum + y.sum;
            buckets = merge_buckets x.buckets y.buckets;
          })
        a.snap_histograms b.snap_histograms;
  }

let counter_in snap name = List.assoc_opt name snap.snap_counters
let gauge_in snap name = List.assoc_opt name snap.snap_gauges
let rate_in snap name = List.assoc_opt name snap.snap_rates
let histogram_in snap name = List.assoc_opt name snap.snap_histograms

(* ---------------- quantile estimation ---------------- *)

(* A quantile estimated from the log2 buckets: find the bucket holding
   the target rank and interpolate linearly inside it.  The log2
   resolution bounds the error — the estimate lands in the same bucket
   as the true sample, i.e. within a factor of 2.  The rank convention
   matches {!Dpv_tensor.Stats.quantile} ([q * (count - 1)], linear in
   the rank) so the two agree exactly on the endpoints. *)
let quantile_of_hist h ~q =
  if q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.quantile_of_hist: q must be in [0, 1]";
  if h.count = 0 then 0.0
  else begin
    let target = (q *. float_of_int (h.count - 1)) +. 1.0 in
    let rec walk cum = function
      | [] -> 0.0 (* unreachable for a consistent snapshot *)
      | (upper, n) :: rest ->
          if float_of_int (cum + n) < target then walk (cum + n) rest
          else begin
            let lo =
              if upper = max_int then float_of_int (1 lsl 62)
              else if upper <= 1 then 0.0
              else float_of_int (upper / 2)
            in
            if upper = max_int then lo
            else
              let hi = float_of_int upper in
              let frac = (target -. float_of_int cum) /. float_of_int n in
              lo +. (frac *. (hi -. lo))
          end
    in
    walk 0 h.buckets
  end

let reset () =
  Mutex.protect registry_lock (fun () ->
      List.iter (fun c -> Atomic.set c.c_cell 0) !counters;
      List.iter (fun g -> Atomic.set g.g_cell 0) !gauges;
      List.iter
        (fun h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        !histograms)

(* ---------------- dpv-metrics/1 JSON ---------------- *)

let buf_obj b ~indent entries emit =
  Buffer.add_char b '{';
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n%s    " indent;
      emit e)
    entries;
  if entries <> [] then Printf.bprintf b "\n%s  " indent;
  Buffer.add_char b '}'

let buf_snapshot ?(indent = "") b snap =
  Printf.bprintf b "{\n%s  \"schema\": \"dpv-metrics/1\",\n" indent;
  Printf.bprintf b "%s  \"counters\": " indent;
  buf_obj b ~indent snap.snap_counters (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  Printf.bprintf b ",\n%s  \"gauges\": " indent;
  buf_obj b ~indent snap.snap_gauges (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  (* Sampled rate gauges live under their own key so shard-merging
     consumers cannot mistake them for summable or maxable-as-depth
     values; histograms additionally carry derived percentiles. *)
  Printf.bprintf b ",\n%s  \"rates\": " indent;
  buf_obj b ~indent snap.snap_rates (fun (name, v) ->
      Printf.bprintf b "%S: %d" name v);
  Printf.bprintf b ",\n%s  \"histograms\": " indent;
  buf_obj b ~indent snap.snap_histograms (fun (name, h) ->
      Printf.bprintf b "%S: {\"count\": %d, \"sum_ns\": %d" name h.count h.sum;
      if h.count > 0 then
        Printf.bprintf b ", \"p50_ns\": %.0f, \"p90_ns\": %.0f, \"p99_ns\": %.0f"
          (quantile_of_hist h ~q:0.5)
          (quantile_of_hist h ~q:0.9)
          (quantile_of_hist h ~q:0.99);
      Buffer.add_string b ", \"buckets\": [";
      List.iteri
        (fun i (up, n) ->
          if i > 0 then Buffer.add_string b ", ";
          Printf.bprintf b "[%d, %d]" up n)
        h.buckets;
      Buffer.add_string b "]}");
  Printf.bprintf b "\n%s}" indent

let to_json ?indent snap =
  let b = Buffer.create 1024 in
  buf_snapshot ?indent b snap;
  Buffer.contents b

let save_json snap ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json snap);
      output_char oc '\n')
