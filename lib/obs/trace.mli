(** Span tracing for the verification stack, in Chrome [trace_event]
    JSON (open the written file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}).

    The pipeline is instrumented — campaign phases, per-query solves,
    retry rungs, MILP trees, simplex resolves, OBBT LPs, journal
    appends, fault fires — but tracing is {e off by default}: every
    site is a single relaxed atomic load until {!configure} arms it
    (the same near-zero-cost discipline as {!Dpv_linprog.Faults}).
    The library never reads the environment; executables opt in via
    [--trace FILE] or by calling {!init_from_env} ([DPV_TRACE]).

    Thread ids are OCaml domain ids; {!name_thread} adds the metadata
    event that makes Perfetto label pool workers ["worker-N"].
    Timestamps come from {!Mclock} (monotonic), so spans survive
    wall-clock jumps. *)

(** A buffered event, exposed concretely so dpv serve can extract a
    job's spans ({!tagged_events}) and compute per-phase breakdowns for
    the slow-query log without re-parsing JSON. *)
type event =
  | Complete of {
      name : string;
      ts_ns : int;
      dur_ns : int;
      tid : int;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      ts_ns : int;
      tid : int;
      args : (string * string) list;
    }
  | Thread_name of { tid : int; label : string }

val enabled : unit -> bool
(** One atomic load; the guard for hot-path instrumentation. *)

val configure : unit -> unit
(** Arm tracing: clear the buffer and restart the trace epoch. *)

val disable : unit -> unit
(** Stop collecting.  The buffer is kept ({!to_json} still works). *)

val arm : unit -> unit
(** Arm tracing {e without} clearing the buffer or restarting the
    epoch (set only if never set).  Job-scoped collection in dpv serve:
    arm before a traced job, extract with {!tagged_events}, then
    {!disable} and {!clear} if no global trace was running. *)

(** {2 Ambient job context}

    A trace id installed with {!with_context} is stamped as a
    [("trace", id)] argument into every event recorded while it is
    active — including events from pool worker domains, since the
    context is global (the serve executor runs one job at a time).
    This is what correlates a job's spans with its protocol frames,
    joblog entries and journal meta. *)

val context : unit -> string option
(** The ambient trace id, if one is installed. *)

val with_context : string -> (unit -> 'a) -> 'a
(** [with_context id f] runs [f] with [id] as the ambient trace id,
    restoring the previous context on exit (also on raise). *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~args name f] runs [f] and, when tracing is armed,
    records a complete event covering it.  If [f] raises, the span is
    recorded with an ["exn"] argument and the exception is re-raised.
    Disabled cost: the [enabled] check plus the closure the caller
    already built. *)

val begin_ns : unit -> int
(** Start of an explicit span: the current monotonic time, or [0] when
    tracing is disabled.  For hot sites with multiple exit points where
    even a closure allocation is unwelcome. *)

val complete : ?args:(string * string) list -> name:string -> int -> unit
(** [complete ~name t0] records a span from [t0] (a {!begin_ns} result)
    to now; a [0] start is dropped, so the pair is safe to leave
    unconditional around code that runs with tracing off. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (fault fires, incumbent updates). *)

val name_thread : string -> unit
(** Label the calling domain's track in the viewer. *)

val event_count : unit -> int
(** Events buffered so far (tests; the disabled-path smoke asserts 0). *)

val tagged_events : string -> event list
(** The buffered events carrying [("trace", id)] (plus every
    [Thread_name] meta, which labels the tracks they live on), oldest
    first.  Non-destructive: the buffer keeps everything. *)

val clear : unit -> unit
(** Drop the buffered events (epoch kept).  Serve calls this after
    extracting a job's spans when no global trace is running, so the
    buffer never grows across jobs. *)

val to_json : unit -> string
(** The buffered trace as a Chrome [trace_event] JSON object
    ([{"traceEvents": [...], ...}]); metadata events first. *)

val events_to_json : event list -> string
(** Render a specific event list ({!tagged_events}) against the
    current epoch — the per-job Chrome-trace payload streamed to
    [dpv client --trace]. *)

val write : path:string -> unit

val init_from_env : unit -> unit
(** If [DPV_TRACE] is set and non-empty, arm tracing now and write the
    trace to that path at process exit.  Only executables should call
    this — the library never reads the environment, so [dune runtest]
    stays deterministic. *)
