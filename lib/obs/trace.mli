(** Span tracing for the verification stack, in Chrome [trace_event]
    JSON (open the written file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}).

    The pipeline is instrumented — campaign phases, per-query solves,
    retry rungs, MILP trees, simplex resolves, OBBT LPs, journal
    appends, fault fires — but tracing is {e off by default}: every
    site is a single relaxed atomic load until {!configure} arms it
    (the same near-zero-cost discipline as {!Dpv_linprog.Faults}).
    The library never reads the environment; executables opt in via
    [--trace FILE] or by calling {!init_from_env} ([DPV_TRACE]).

    Thread ids are OCaml domain ids; {!name_thread} adds the metadata
    event that makes Perfetto label pool workers ["worker-N"].
    Timestamps come from {!Mclock} (monotonic), so spans survive
    wall-clock jumps. *)

val enabled : unit -> bool
(** One atomic load; the guard for hot-path instrumentation. *)

val configure : unit -> unit
(** Arm tracing: clear the buffer and restart the trace epoch. *)

val disable : unit -> unit
(** Stop collecting.  The buffer is kept ({!to_json} still works). *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~args name f] runs [f] and, when tracing is armed,
    records a complete event covering it.  If [f] raises, the span is
    recorded with an ["exn"] argument and the exception is re-raised.
    Disabled cost: the [enabled] check plus the closure the caller
    already built. *)

val begin_ns : unit -> int
(** Start of an explicit span: the current monotonic time, or [0] when
    tracing is disabled.  For hot sites with multiple exit points where
    even a closure allocation is unwelcome. *)

val complete : ?args:(string * string) list -> name:string -> int -> unit
(** [complete ~name t0] records a span from [t0] (a {!begin_ns} result)
    to now; a [0] start is dropped, so the pair is safe to leave
    unconditional around code that runs with tracing off. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event (fault fires, incumbent updates). *)

val name_thread : string -> unit
(** Label the calling domain's track in the viewer. *)

val event_count : unit -> int
(** Events buffered so far (tests; the disabled-path smoke asserts 0). *)

val to_json : unit -> string
(** The buffered trace as a Chrome [trace_event] JSON object
    ([{"traceEvents": [...], ...}]); metadata events first. *)

val write : path:string -> unit

val init_from_env : unit -> unit
(** If [DPV_TRACE] is set and non-empty, arm tracing now and write the
    trace to that path at process exit.  Only executables should call
    this — the library never reads the environment, so [dune runtest]
    stays deterministic. *)
