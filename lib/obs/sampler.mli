(** Background sampler domain for continuous profiling.

    [dpv serve] runs one of these to snapshot [Gc.quick_stat], the
    admission queue depth, jobs-in-system and solver counters on a
    fixed tick, publishing them as sampled gauges and rolling-window
    rates ({!Metrics.sample}, {!Metrics.rate}).  Off by default outside
    serve; zero hot-path cost — the solve path never sees it. *)

type t

val start : ?interval_s:float -> sample:(now_ns:int -> unit) -> unit -> t
(** Spawn the sampler domain.  [sample] is called once per tick
    (default every 0.5 s) with the monotonic clock reading to feed to
    {!Metrics.rate_tick}; exceptions it raises are swallowed (a broken
    probe degrades observability, not the service).  Raises
    [Invalid_argument] if [interval_s <= 0]. *)

val stop : t -> unit
(** Stop and join the domain (latency bounded at ~50 ms regardless of
    the interval).  Idempotent; later calls return immediately. *)
