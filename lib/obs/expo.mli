(** OpenMetrics / Prometheus text exposition of a {!Metrics.snapshot}.

    The live half of the metrics layer: where {!Metrics.to_json}
    ([dpv-metrics/1]) is the archival schema embedded in campaign
    reports, [Expo.render] is what the [dpv serve] scrape endpoint
    returns to a polling Prometheus.  Pure rendering — take a snapshot,
    get a string — so it is trivially safe to call from a scrape
    handler thread while campaigns run. *)

val sanitize : string -> string
(** Map a registry name onto the exposition namespace: characters
    outside [[a-zA-Z0-9_]] become ['_'] and the result is prefixed
    ["dpv_"] (["serve.job_ns"] -> ["dpv_serve_job_ns"]). *)

val escape_label : string -> string
(** Escape a label {e value} per the text format: backslash, double
    quote and newline become backslash-escaped sequences. *)

val render : ?labels:(string * string) list -> Metrics.snapshot -> string
(** The full exposition: one [# TYPE] line per family, counters as a
    single [_total] sample, high-water gauges as integers, sampled
    gauges/rates as floats (milli-units restored), histograms as
    cumulative [_bucket] series keyed by an [le] label in ns (open
    bucket [le] of [+Inf]) plus [_sum]/[_count], terminated by
    [# EOF].  [labels] is attached to every sample (merged before
    [le]). *)
