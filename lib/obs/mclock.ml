(* The container has no monotonic-clock binding (no mtime opam package),
   so monotonicity is enforced in software: readings are clamped to
   never decrease across a wall-clock step backwards (NTP slew, VM
   migration).  Nanoseconds are measured from a process-start epoch so
   the float subtraction below stays well inside the 2^53 window where
   doubles are exact to the nanosecond. *)

let epoch_s = Unix.gettimeofday ()
let last = Atomic.make 0

let now_ns () =
  let raw = int_of_float ((Unix.gettimeofday () -. epoch_s) *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else clamp ()
  in
  clamp ()

let ns_to_us ns = float_of_int ns /. 1e3
let ns_to_s ns = float_of_int ns /. 1e9
