(* Span tracing in Chrome trace_event format.

   Disabled (the default), every instrumentation site is one relaxed
   atomic load — the same discipline as Dpv_linprog.Faults — so the
   solver hot paths pay nothing measurable.  Armed, events accumulate
   in one mutex-protected in-memory buffer (campaign-scale traces are
   thousands of events, not millions) and are written once at the end. *)

type event =
  | Complete of {
      name : string;
      ts_ns : int;
      dur_ns : int;
      tid : int;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      ts_ns : int;
      tid : int;
      args : (string * string) list;
    }
  | Thread_name of { tid : int; label : string }

let armed = Atomic.make false
let lock = Mutex.create ()
let events : event list ref = ref []
let epoch_ns = ref 0

let enabled () = Atomic.get armed

let configure () =
  Mutex.protect lock (fun () ->
      events := [];
      epoch_ns := Mclock.now_ns ());
  Atomic.set armed true

let disable () = Atomic.set armed false

(* Job-scoped arming for dpv serve: start collecting without discarding
   whatever an already-armed global trace has buffered, and keep the
   epoch stable across jobs so per-job extracts share one timeline. *)
let arm () =
  Mutex.protect lock (fun () ->
      if !epoch_ns = 0 then epoch_ns := Mclock.now_ns ());
  Atomic.set armed true

(* ---------------- ambient job context ----------------

   One global cell, not domain-local: the serve executor runs jobs one
   at a time, and the pool workers it fans out to should inherit the
   same job's trace id.  [record] stamps the id into every event's args
   so a job's spans can be extracted later ([tagged_events]) even
   though they interleave with other instrumentation in one buffer. *)

let context_cell : string option Atomic.t = Atomic.make None
let context () = Atomic.get context_cell

let with_context id f =
  let prev = Atomic.exchange context_cell (Some id) in
  Fun.protect ~finally:(fun () -> Atomic.set context_cell prev) f

let record ev =
  let ev =
    match (Atomic.get context_cell, ev) with
    | Some id, Complete c -> Complete { c with args = ("trace", id) :: c.args }
    | Some id, Instant i -> Instant { i with args = ("trace", id) :: i.args }
    | _ -> ev
  in
  Mutex.protect lock (fun () -> events := ev :: !events)
let tid () = (Domain.self () :> int)

(* Explicit begin/end pair for hot sites that want to avoid even a
   closure allocation on the enabled path: [begin_ns] returns 0 when
   tracing is off, and [complete] drops the event for a 0 start (which
   also covers tracing being disabled mid-span). *)
let begin_ns () = if Atomic.get armed then Mclock.now_ns () else 0

let complete ?(args = []) ~name t0 =
  if t0 <> 0 && Atomic.get armed then
    record
      (Complete
         { name; ts_ns = t0; dur_ns = Mclock.now_ns () - t0; tid = tid (); args })

let with_span ?(args = []) name f =
  if not (Atomic.get armed) then f ()
  else begin
    let t0 = Mclock.now_ns () in
    match f () with
    | v ->
        record
          (Complete
             {
               name;
               ts_ns = t0;
               dur_ns = Mclock.now_ns () - t0;
               tid = tid ();
               args;
             });
        v
    | exception e ->
        (* The span still lands in the trace — an aborted phase with its
           exception text is exactly what a chaos-run trace is for. *)
        record
          (Complete
             {
               name;
               ts_ns = t0;
               dur_ns = Mclock.now_ns () - t0;
               tid = tid ();
               args = ("exn", Printexc.to_string e) :: args;
             });
        raise e
  end

let instant ?(args = []) name =
  if Atomic.get armed then
    record (Instant { name; ts_ns = Mclock.now_ns (); tid = tid (); args })

let name_thread label =
  if Atomic.get armed then record (Thread_name { tid = tid (); label })

let event_count () = Mutex.protect lock (fun () -> List.length !events)

let tagged_events id =
  let tagged = function
    | Complete { args; _ } | Instant { args; _ } ->
        List.exists (fun (k, v) -> k = "trace" && v = id) args
    | Thread_name _ -> true
    (* thread metas label the tracks the job's spans live on *)
  in
  Mutex.protect lock (fun () -> List.rev (List.filter tagged !events))

let clear () = Mutex.protect lock (fun () -> events := [])

(* ---------------- Chrome trace_event JSON ---------------- *)

(* Timestamps are microseconds relative to [configure] time, with
   nanosecond precision kept in the fraction — what chrome://tracing
   and Perfetto expect for "ts"/"dur". *)
let buf_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S: %S" k v)
    args;
  Buffer.add_string b "}"

let buf_event b pid epoch ev =
  let us ns = float_of_int (ns - epoch) /. 1e3 in
  match ev with
  | Complete { name; ts_ns; dur_ns; tid; args } ->
      Printf.bprintf b
        "{\"name\": %S, \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
         \"pid\": %d, \"tid\": %d, \"args\": "
        name (us ts_ns)
        (float_of_int dur_ns /. 1e3)
        pid tid;
      buf_args b args;
      Buffer.add_string b "}"
  | Instant { name; ts_ns; tid; args } ->
      Printf.bprintf b
        "{\"name\": %S, \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \
         \"pid\": %d, \"tid\": %d, \"args\": "
        name (us ts_ns) pid tid;
      buf_args b args;
      Buffer.add_string b "}"
  | Thread_name { tid; label } ->
      Printf.bprintf b
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \
         \"tid\": %d, \"args\": {\"name\": %S}}"
        pid tid label

let json_of ~epoch evs =
  let pid = Unix.getpid () in
  (* Metadata first so viewers label threads before their first event. *)
  let metas, rest =
    List.partition (function Thread_name _ -> true | _ -> false) evs
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      buf_event b pid epoch ev)
    (metas @ rest);
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let to_json () =
  let evs, epoch =
    Mutex.protect lock (fun () -> (List.rev !events, !epoch_ns))
  in
  json_of ~epoch evs

let events_to_json evs =
  let epoch = Mutex.protect lock (fun () -> !epoch_ns) in
  json_of ~epoch evs

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))

let init_from_env () =
  match Sys.getenv_opt "DPV_TRACE" with
  | None -> ()
  | Some path when String.trim path = "" -> ()
  | Some path ->
      configure ();
      at_exit (fun () -> write ~path)
