(* Background sampler domain: the continuous-profiling tick behind
   dpv serve.  One domain wakes on a fixed interval and calls the
   caller's [sample] callback, which reads cheap sources (Gc.quick_stat,
   queue depths, counter values) and publishes them through
   [Metrics.set] / [Metrics.rate_tick].  Nothing here touches the solve
   hot path: the cost of profiling is one mostly-sleeping domain.

   The loop sleeps in short slices so [stop] takes effect within ~50 ms
   regardless of the tick interval — serve drains must not hang behind
   a sampler nap. *)

type t = { stopped : bool Atomic.t; domain : unit Domain.t }

let start ?(interval_s = 0.5) ~sample () =
  if interval_s <= 0.0 then invalid_arg "Sampler.start: interval_s must be > 0";
  let stopped = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        while not (Atomic.get stopped) do
          (* A failing probe must not kill the sampler: observability
             degrades, the service does not. *)
          (try sample ~now_ns:(Mclock.now_ns ()) with _ -> ());
          let deadline = Unix.gettimeofday () +. interval_s in
          let rec nap () =
            if not (Atomic.get stopped) then begin
              let left = deadline -. Unix.gettimeofday () in
              if left > 0.0 then begin
                Unix.sleepf (Float.min left 0.05);
                nap ()
              end
            end
          in
          nap ()
        done)
  in
  { stopped; domain }

let stop t = if not (Atomic.exchange t.stopped true) then Domain.join t.domain
