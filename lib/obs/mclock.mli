(** Monotonic time source for trace timestamps.

    Trace spans must never go negative or jump when the wall clock is
    adjusted mid-run.  With no monotonic-clock binding available in the
    toolchain, this module derives a never-decreasing nanosecond counter
    from [Unix.gettimeofday]: each reading is clamped (with a CAS loop,
    so it is safe across domains) to be at least the previous one.  A
    backwards wall-clock step therefore freezes the trace clock until
    real time catches up instead of producing negative span durations.

    Deadline logic deliberately keeps using {!Dpv_linprog.Clock.now_s}
    (raw wall time): a deadline is a promise about the wall. *)

val now_ns : unit -> int
(** Nanoseconds since process start; never decreases. *)

val ns_to_us : int -> float
val ns_to_s : int -> float
