(* OpenMetrics / Prometheus text exposition of the metrics registry.
   Pure snapshot -> string rendering: the scrape endpoint in dpv serve
   calls [render (Metrics.snapshot ())] per GET, so this code never
   touches the hot path and needs no locking of its own.

   Mapping choices, pinned here because scrapers bake them in:
   - names are sanitized to [a-zA-Z0-9_] and prefixed ["dpv_"], so
     ["serve.job_ns"] becomes ["dpv_serve_job_ns"];
   - counters expose a single [_total] sample (OpenMetrics counters
     carry the suffix on the sample, not the family);
   - high-water gauges expose their integer value; sampled gauges and
     rates divide their milli-unit cell by 1000 back into a float;
   - the log2-ns histograms become cumulative [_bucket{le="..."}]
     series plus [_sum]/[_count], with the open top bucket at
     [le="+Inf"] — bucket bounds stay in nanoseconds, matching the
     [_ns] naming convention. *)

let sanitize name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "dpv_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Rendered once per family when the label set is fixed, and per sample
   for histograms (the [le] label varies). *)
let labelset pairs =
  match pairs with
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             pairs)
      ^ "}"

let render ?(labels = []) (snap : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let base = labelset labels in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Printf.bprintf b "# TYPE %s counter\n%s_total%s %d\n" n n base v)
    snap.Metrics.snap_counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      Printf.bprintf b "# TYPE %s gauge\n%s%s %d\n" n n base v)
    snap.Metrics.snap_gauges;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      (* Sampled cells hold milli-units; exposition restores the float. *)
      Printf.bprintf b "# TYPE %s gauge\n%s%s %g\n" n n base
        (float_of_int v /. 1000.0))
    snap.Metrics.snap_rates;
  List.iter
    (fun (name, h) ->
      let n = sanitize name in
      Printf.bprintf b "# TYPE %s histogram\n" n;
      let cum = ref 0 in
      List.iter
        (fun (upper, count) ->
          cum := !cum + count;
          if upper <> max_int then
            Printf.bprintf b "%s_bucket%s %d\n" n
              (labelset (labels @ [ ("le", string_of_int upper) ]))
              !cum)
        h.Metrics.buckets;
      Printf.bprintf b "%s_bucket%s %d\n" n
        (labelset (labels @ [ ("le", "+Inf") ]))
        h.Metrics.count;
      Printf.bprintf b "%s_sum%s %d\n" n base h.Metrics.sum;
      Printf.bprintf b "%s_count%s %d\n" n base h.Metrics.count)
    snap.Metrics.snap_histograms;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
