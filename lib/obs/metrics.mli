(** Always-on typed metrics registry for the verification stack.

    One global registry holds named counters, high-water gauges and
    log-scale histograms.  Construction ({!counter}, {!gauge},
    {!histogram}) registers the metric once — call it at module-init
    time and keep the handle.  The hot-path operations ({!incr},
    {!set_max}, {!observe}) are single atomic read-modify-writes on
    preallocated cells: no allocation, no lock, safe from any domain.

    Unlike {!Trace}, metrics are always collected — they are a handful
    of atomic adds against LP solves, too cheap to gate.  Snapshots
    ({!snapshot}, {!since}) give a consistent view; {!to_json} exports
    the [dpv-metrics/1] schema embedded in campaign reports and bench
    baselines.

    Conventions: durations are accumulated as integer {e nanoseconds}
    (histogram sums are reported as [sum_ns]); names are dotted paths
    such as ["simplex.pivots"] or ["journal.append_ns"]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) the counter with this name. *)

val gauge : string -> gauge
(** Register (or look up) the high-water gauge with this name. *)

val sample : string -> gauge
(** Register (or look up) a {e sampled} gauge: a last-writer-wins
    point sample (queue depth right now) rather than a high-water
    mark.  Sampled gauges are reported under ["rates"] in the JSON so
    shard-merging consumers never sum or max them as if they were
    cumulative. *)

val histogram : string -> histogram
(** Register (or look up) a histogram with fixed log2 buckets over
    nanoseconds: bucket [i] counts observations [v] with
    [2^(i-1) < v <= 2^i] (bucket 0 catches [v <= 1]).  63 buckets
    cover the whole non-negative range. *)

val incr : counter -> int -> unit
val counter_value : counter -> int

val set_max : gauge -> int -> unit
(** Raise the gauge to [v] if [v] exceeds its current value (CAS loop);
    gauges are monotonic high-water marks, not last-write samples. *)

val gauge_value : gauge -> int

val set : gauge -> int -> unit
(** Overwrite the gauge (for {!sample} gauges fed by a sampler).
    Stored as [v * 1000] so every value under ["rates"] — point sample
    or windowed rate — is uniformly in milli-units. *)

val observe : histogram -> int -> unit
(** Record one observation (negative values clamp to 0). *)

(** {2 Rolling-window rates}

    A rate gauge turns a cumulative series (a counter, GC minor words)
    into events-per-second over a rolling window.  {!rate_tick} is
    meant to be called by a background sampler on a fixed tick — never
    from a hot path.  The published gauge value is in
    {e milli-events per second} (integer gauges cannot carry
    fractions). *)

type rate

val rate : ?window_s:float -> string -> rate
(** Register a {!sample}-kind gauge named [name] driven by a rolling
    window (default 10 s). *)

val rate_tick : rate -> now_ns:int -> int -> unit
(** Feed one (timestamp, cumulative value) observation and republish
    the windowed per-second rate (×1000) to the gauge. *)

val rate_value : rate -> int
(** The current published value (milli-events/second). *)

val bucket_index : int -> int
(** The bucket an observation lands in — exposed for tests. *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [i] in ns ([max_int] for the last). *)

(** {2 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  buckets : (int * int) list;
      (** [(upper_bound_ns, count)] for nonzero buckets (bound is
          inclusive), in
          ascending bound order *)
}

type snapshot = {
  snap_counters : (string * int) list;    (** sorted by name *)
  snap_gauges : (string * int) list;
      (** high-water gauges only, sorted by name *)
  snap_rates : (string * int) list;
      (** {!sample}-kind gauges (point samples / windowed rates in
          milli-units), sorted by name *)
  snap_histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent-enough copy of every registered metric (each cell is
    read atomically; the set of metrics is read under the registry
    lock). *)

val since : before:snapshot -> snapshot -> snapshot
(** [since ~before after] is what happened between the two snapshots:
    counters and histogram totals subtract (metrics absent at [before]
    count from zero); gauges and rates keep the [after] value, since
    subtracting high-water marks or point samples is meaningless. *)

val empty_snapshot : snapshot
(** A snapshot of nothing: the identity of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Combine snapshots taken in {e different} processes (campaign
    shards): counters and histogram totals add, gauges keep the larger
    high-water mark, histogram buckets merge bucket-wise.  Rates are
    {e never} summed (shards usually ran sequentially; adding their
    throughputs would fabricate parallelism) — the larger sustained
    rate is kept.  This is how [dpv merge-journals] turns per-shard
    [dpv-metrics/1] snapshots into exact whole-campaign totals.  Not
    for two snapshots of the same process — use {!since} for
    in-process deltas. *)

val counter_in : snapshot -> string -> int option
val gauge_in : snapshot -> string -> int option
val rate_in : snapshot -> string -> int option
val histogram_in : snapshot -> string -> hist_snapshot option

val quantile_of_hist : hist_snapshot -> q:float -> float
(** Estimate the [q]-quantile (in ns) from the log2 buckets: find the
    bucket holding the target rank and interpolate linearly inside it.
    The log2 resolution bounds the error to the bucket, i.e. a factor
    of 2 of the true sample quantile.  [0.0] for an empty histogram;
    raises [Invalid_argument] outside [0 <= q <= 1]. *)

val reset : unit -> unit
(** Zero every registered metric (tests). *)

val to_json : ?indent:string -> snapshot -> string
(** The [dpv-metrics/1] JSON object.  [indent] prefixes every line
    after the first, for embedding inside a larger document.  Sampled
    gauges are reported under ["rates"]; histograms with observations
    additionally carry derived [p50_ns]/[p90_ns]/[p99_ns]. *)

val buf_snapshot : ?indent:string -> Buffer.t -> snapshot -> unit

val save_json : snapshot -> path:string -> unit
