(** Scenario sampling and dataset construction.

    Models the data-collection campaign of the paper's evaluation: frames
    from a highway segment with weather and lane variations (footnote 7).
    All sampling is driven by an explicit {!Dpv_tensor.Rng.t}. *)

type config = {
  camera : Camera.config;
  curvature_range : float * float;       (** 1/m *)
  curvature_rate_range : float * float;  (** 1/m^2 *)
  max_lanes : int;
  lateral_offset_std : float;            (** m *)
  heading_error_std : float;             (** rad *)
  rain_probability : float;
  fog_probability : float;
  traffic_probability : float;           (** chance of each potential vehicle *)
  max_vehicles : int;
}

val default_config : config

val sample_scene : config -> Dpv_tensor.Rng.t -> Scene.t

val sample_scenes : config -> Dpv_tensor.Rng.t -> n:int -> Scene.t array

val render_scene : config -> Dpv_tensor.Rng.t -> Scene.t -> Dpv_tensor.Vec.t

val affordance_dataset :
  config -> Dpv_tensor.Rng.t -> n:int -> Dpv_train.Dataset.t
(** (image, ground-truth affordance) pairs for training the direct
    perception network. *)

val property_dataset :
  config ->
  Dpv_tensor.Rng.t ->
  n:int ->
  property:Scene.t Dpv_spec.Property.t ->
  Dpv_train.Dataset.t * Scene.t array
(** (image, 0/1 label) pairs for training a characterizer, along with the
    scenes behind each row.  Rejection-sampled to roughly balance the two
    classes when the property is rare. *)

val scenes_and_images :
  config -> Dpv_tensor.Rng.t -> n:int -> (Scene.t * Dpv_tensor.Vec.t) array
