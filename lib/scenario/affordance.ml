let lookahead = 25.0
let dim = 2
let waypoint_index = 0
let orientation_index = 1

let waypoint scene = Scene.lane_center_at scene lookahead

let orientation scene =
  Road.heading scene.Scene.road lookahead -. scene.Scene.heading_error

let ground_truth scene = [| waypoint scene; orientation scene |]
