(** Synthetic forward-facing camera.

    Renders a scene into a low-resolution grayscale intensity image,
    flattened row-major into a vector in [0,1]^(width*height).  Pixel rows
    map to ground distances with exponential spacing (bottom = near); the
    horizontal field of view widens linearly with distance (pinhole
    model).  Weather degrades the image the way the paper's data
    variations do: fog washes out far rows, rain adds noise. *)

type config = {
  width : int;
  height : int;
  d_near : float;   (** ground distance of the bottom pixel row, m *)
  d_far : float;    (** ground distance of the top pixel row, m *)
  focal : float;    (** pixels-per-unit-slope; larger = narrower FOV *)
  noise_std : float;(** sensor noise in clear weather *)
}

val default_config : config
(** 16x12 pixels, 5..60 m, matching the evaluation setup. *)

val input_dim : config -> int

val row_distance : config -> int -> float
(** Ground distance represented by pixel row [r] (row 0 = top = far). *)

val pixel_lateral : config -> row:int -> col:int -> float
(** Lateral ground position (m, ego frame) seen by the pixel. *)

val render : ?rng:Dpv_tensor.Rng.t -> config -> Scene.t -> Dpv_tensor.Vec.t
(** Deterministic apart from sensor/weather noise drawn from [rng]
    (no noise when [rng] is omitted). *)

val to_ascii : config -> Dpv_tensor.Vec.t -> string
(** Debug visualization of a rendered frame. *)
