module Property = Dpv_spec.Property

let bend_threshold = 0.008

(* Curvature evaluated mid-way to the lookahead point, so curvature_rate
   contributes the way it does to the rendered image. *)
let effective_curvature scene =
  Road.curvature_at scene.Scene.road (Affordance.lookahead /. 2.0)

(* A labelling oracle declines frames whose curvature sits within 30% of
   the bend threshold — borderline bends that a human would not call. *)
let near_bend_boundary ~sign scene =
  let k = sign *. effective_curvature scene in
  Float.abs (k -. bend_threshold) <= 0.3 *. bend_threshold

let bends_right =
  Property.make ~name:"bends-right"
    ~description:"the road bends to the right (curvature below threshold)"
    ~oracle:(fun s -> effective_curvature s <= -.bend_threshold)
    ~ambiguous:(near_bend_boundary ~sign:(-1.0))
    ()

let bends_left =
  Property.make ~name:"bends-left"
    ~description:"the road bends to the left (curvature above threshold)"
    ~oracle:(fun s -> effective_curvature s >= bend_threshold)
    ~ambiguous:(near_bend_boundary ~sign:1.0)
    ()

let straight =
  Property.make ~name:"straight"
    ~description:"the road is straight (curvature magnitude small)"
    ~oracle:(fun s ->
      Float.abs (effective_curvature s) <= bend_threshold /. 2.0)
    ~ambiguous:(fun s ->
      let k = Float.abs (effective_curvature s) in
      Float.abs (k -. (bend_threshold /. 2.0)) <= 0.15 *. bend_threshold)
    ()

let traffic_adjacent =
  Property.make ~name:"traffic-adjacent"
    ~description:"a traffic participant occupies an adjacent lane within 40 m"
    ~oracle:(fun s ->
      List.exists
        (fun (v : Scene.vehicle) ->
          abs (Scene.lane_offset_of s v) = 1 && v.Scene.distance <= 40.0)
        s.Scene.traffic)
    ~ambiguous:(fun s ->
      (* Vehicles right at the 40 m cutoff are hard to call from a frame. *)
      List.exists
        (fun (v : Scene.vehicle) ->
          abs (Scene.lane_offset_of s v) = 1
          && Float.abs (v.Scene.distance -. 40.0) <= 5.0)
        s.Scene.traffic)
    ()

let weather_degraded =
  Property.make ~name:"weather-degraded"
    ~description:"the frame was captured in rain or fog"
    ~oracle:(fun s ->
      match s.Scene.weather with
      | Scene.Rain | Scene.Fog -> true
      | Scene.Clear -> false)
    ()

let all =
  [
    ("bends-right", bends_right);
    ("bends-left", bends_left);
    ("straight", straight);
    ("traffic-adjacent", traffic_adjacent);
    ("weather-degraded", weather_degraded);
  ]

let find name = List.assoc_opt name all
