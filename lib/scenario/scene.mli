(** A complete world state from which one camera frame is rendered.

    The ego vehicle drives in lane [ego_lane] (0-based, counted from the
    right edge of the road) with a small lateral offset from the lane
    center and a small heading error.  Traffic vehicles occupy lanes at
    longitudinal distances ahead.  The weather knob reproduces the
    paper's footnote-7 data variations. *)

type weather = Clear | Rain | Fog

type vehicle = { lane : int; distance : float  (** m ahead of ego *) }

type t = {
  road : Road.t;
  ego_lane : int;
  lateral_offset : float;  (** m, left-positive, from the ego lane center *)
  heading_error : float;   (** rad, left-positive *)
  weather : weather;
  traffic : vehicle list;
}

val make :
  ?lateral_offset:float ->
  ?heading_error:float ->
  ?weather:weather ->
  ?traffic:vehicle list ->
  road:Road.t ->
  ego_lane:int ->
  unit ->
  t

val lane_center_at : t -> float -> float
(** Lateral position (m, ego frame) of the ego lane center at distance [d];
    this folds in road curvature, the ego lateral offset and heading error. *)

val lane_offset_of : t -> vehicle -> int
(** Vehicle lane relative to ego: negative = to the right. *)

val weather_name : weather -> string
val pp : Format.formatter -> t -> unit
