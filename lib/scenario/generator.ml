module Rng = Dpv_tensor.Rng
module Dataset = Dpv_train.Dataset
module Property = Dpv_spec.Property

type config = {
  camera : Camera.config;
  curvature_range : float * float;
  curvature_rate_range : float * float;
  max_lanes : int;
  lateral_offset_std : float;
  heading_error_std : float;
  rain_probability : float;
  fog_probability : float;
  traffic_probability : float;
  max_vehicles : int;
}

let default_config =
  {
    camera = Camera.default_config;
    curvature_range = (-0.025, 0.025);
    curvature_rate_range = (-0.0003, 0.0003);
    max_lanes = 3;
    lateral_offset_std = 0.3;
    heading_error_std = 0.015;
    rain_probability = 0.2;
    fog_probability = 0.15;
    traffic_probability = 0.5;
    max_vehicles = 2;
  }

let clamp lo hi x = Float.max lo (Float.min hi x)

let sample_scene cfg rng =
  let lo_k, hi_k = cfg.curvature_range in
  let lo_r, hi_r = cfg.curvature_rate_range in
  let curvature = Rng.uniform rng ~lo:lo_k ~hi:hi_k in
  let curvature_rate = Rng.uniform rng ~lo:lo_r ~hi:hi_r in
  let num_lanes = 2 + Rng.int rng (Stdlib.max 1 (cfg.max_lanes - 1)) in
  let road = Road.make ~curvature ~curvature_rate ~num_lanes () in
  let ego_lane = Rng.int rng num_lanes in
  let lateral_offset =
    clamp (-1.0) 1.0 (Rng.gaussian_scaled rng ~mean:0.0 ~std:cfg.lateral_offset_std)
  in
  let heading_error =
    clamp (-0.05) 0.05 (Rng.gaussian_scaled rng ~mean:0.0 ~std:cfg.heading_error_std)
  in
  let weather =
    let u = Rng.float rng 1.0 in
    if u < cfg.rain_probability then Scene.Rain
    else if u < cfg.rain_probability +. cfg.fog_probability then Scene.Fog
    else Scene.Clear
  in
  let traffic =
    List.filter_map
      (fun _ ->
        if Rng.bernoulli rng ~p:cfg.traffic_probability then
          Some
            {
              Scene.lane = Rng.int rng num_lanes;
              distance = Rng.uniform rng ~lo:10.0 ~hi:55.0;
            }
        else None)
      (List.init cfg.max_vehicles (fun i -> i))
  in
  Scene.make ~lateral_offset ~heading_error ~weather ~traffic ~road ~ego_lane ()

let sample_scenes cfg rng ~n = Array.init n (fun _ -> sample_scene cfg rng)

let render_scene cfg rng scene = Camera.render ~rng cfg.camera scene

let scenes_and_images cfg rng ~n =
  Array.map
    (fun scene -> (scene, render_scene cfg rng scene))
    (sample_scenes cfg rng ~n)

let affordance_dataset cfg rng ~n =
  let pairs = scenes_and_images cfg rng ~n in
  Dataset.create
    ~inputs:(Array.map snd pairs)
    ~targets:(Array.map (fun (s, _) -> Affordance.ground_truth s) pairs)

(* Rejection-sample scenes until each class holds ~half of [n] (give up on
   exact balance after a generous attempt budget so rare properties still
   terminate). *)
let property_dataset cfg rng ~n ~property =
  let want_each = Stdlib.max 1 (n / 2) in
  let pos = ref [] and neg = ref [] in
  let n_pos = ref 0 and n_neg = ref 0 in
  let attempts = ref 0 in
  let budget = 100 * n in
  while (!n_pos < want_each || !n_neg < want_each) && !attempts < budget do
    incr attempts;
    let scene = sample_scene cfg rng in
    let is_pos = Property.holds property scene in
    if Property.is_ambiguous property scene then ()
    else if is_pos && !n_pos < want_each then begin
      pos := scene :: !pos;
      incr n_pos
    end
    else if (not is_pos) && !n_neg < want_each then begin
      neg := scene :: !neg;
      incr n_neg
    end
  done;
  let scenes = Array.of_list (!pos @ !neg) in
  if Array.length scenes < 2 then
    failwith
      (Printf.sprintf "Generator.property_dataset: property %S too rare"
         property.Property.name);
  Rng.shuffle_in_place rng scenes;
  let inputs = Array.map (render_scene cfg rng) scenes in
  let targets = Array.map (fun s -> [| Property.label property s |]) scenes in
  (Dataset.create ~inputs ~targets, scenes)
