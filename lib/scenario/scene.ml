type weather = Clear | Rain | Fog

type vehicle = { lane : int; distance : float }

type t = {
  road : Road.t;
  ego_lane : int;
  lateral_offset : float;
  heading_error : float;
  weather : weather;
  traffic : vehicle list;
}

let make ?(lateral_offset = 0.0) ?(heading_error = 0.0) ?(weather = Clear)
    ?(traffic = []) ~road ~ego_lane () =
  if ego_lane < 0 || ego_lane >= road.Road.num_lanes then
    invalid_arg "Scene.make: ego_lane out of range";
  List.iter
    (fun v ->
      if v.lane < 0 || v.lane >= road.Road.num_lanes then
        invalid_arg "Scene.make: traffic lane out of range";
      if v.distance < 0.0 then invalid_arg "Scene.make: traffic behind ego")
    traffic;
  { road; ego_lane; lateral_offset; heading_error; weather; traffic }

(* Small-angle ego-frame transform: the road-induced lateral motion minus
   where the ego actually is and where it points. *)
let lane_center_at scene d =
  Road.centerline_offset scene.road d
  -. scene.lateral_offset
  -. (d *. scene.heading_error)

let lane_offset_of scene v = v.lane - scene.ego_lane

let weather_name = function Clear -> "clear" | Rain -> "rain" | Fog -> "fog"

let pp fmt s =
  Format.fprintf fmt
    "@[<h>scene(k=%g k'=%g lanes=%d ego=%d off=%.2f hdg=%.3f %s traffic=%d)@]"
    s.road.Road.curvature s.road.Road.curvature_rate s.road.Road.num_lanes
    s.ego_lane s.lateral_offset s.heading_error (weather_name s.weather)
    (List.length s.traffic)
