(** Oracles for input properties [phi] over scenes.

    These play the role of the human oracle of Section 2.1: they decide,
    from the world state that produced an image, whether the property
    holds.  Thresholds follow the evaluation narrative: a road "bends
    right" when its curvature at the lookahead point is below
    [-bend_threshold]. *)

val bend_threshold : float
(** 1/m; default 0.008 (~ 125 m turn radius at the threshold). *)

val bends_right : Scene.t Dpv_spec.Property.t
val bends_left : Scene.t Dpv_spec.Property.t
val straight : Scene.t Dpv_spec.Property.t
(** Curvature magnitude below half the bend threshold. *)

val traffic_adjacent : Scene.t Dpv_spec.Property.t
(** Some vehicle in a lane adjacent to ego within 40 m — the property the
    paper found untrainable from close-to-output features (information
    bottleneck). *)

val weather_degraded : Scene.t Dpv_spec.Property.t
(** Rain or fog. *)

val all : (string * Scene.t Dpv_spec.Property.t) list
val find : string -> Scene.t Dpv_spec.Property.t option
