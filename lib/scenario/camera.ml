module Rng = Dpv_tensor.Rng

type config = {
  width : int;
  height : int;
  d_near : float;
  d_far : float;
  focal : float;
  noise_std : float;
}

let default_config =
  {
    width = 16;
    height = 12;
    d_near = 5.0;
    d_far = 60.0;
    focal = 16.0;
    noise_std = 0.01;
  }

let input_dim cfg = cfg.width * cfg.height

(* Row 0 is the top of the image (far); the bottom row is d_near.  Rows
   are spaced exponentially in distance, which mimics perspective
   foreshortening of the ground plane. *)
let row_distance cfg r =
  let frac = float_of_int (cfg.height - 1 - r) /. float_of_int (cfg.height - 1) in
  cfg.d_near *. ((cfg.d_far /. cfg.d_near) ** frac)

let pixel_lateral cfg ~row ~col =
  let d = row_distance cfg row in
  let c = float_of_int col -. ((float_of_int cfg.width -. 1.0) /. 2.0) in
  c *. d /. cfg.focal

(* Ground-truth intensities. *)
let off_road_intensity = 0.55
let road_intensity = 0.2
let marking_intensity = 0.9
let vehicle_intensity = 0.95

let render ?rng cfg scene =
  let road = scene.Scene.road in
  let w = road.Road.lane_width in
  let lanes_left = road.Road.num_lanes - 1 - scene.Scene.ego_lane in
  let lanes_right = scene.Scene.ego_lane in
  let out = Array.make (input_dim cfg) 0.0 in
  for r = 0 to cfg.height - 1 do
    let d = row_distance cfg r in
    let center = Scene.lane_center_at scene d in
    let left_edge = center +. (w /. 2.0) +. (float_of_int lanes_left *. w) in
    let right_edge = center -. (w /. 2.0) -. (float_of_int lanes_right *. w) in
    (* Lane markings sit on every lane boundary including road edges. *)
    let boundaries =
      List.init (road.Road.num_lanes + 1) (fun k ->
          right_edge +. (float_of_int k *. w))
    in
    (* Markings must stay visible at low resolution: at least ~60% of the
       pixel footprint at that distance. *)
    let pixel_halfwidth = 0.5 *. d /. cfg.focal in
    let marking_halfwidth = Float.max 0.25 (0.6 *. pixel_halfwidth) in
    for c = 0 to cfg.width - 1 do
      let x = pixel_lateral cfg ~row:r ~col:c in
      let base =
        if x >= right_edge && x <= left_edge then
          if
            List.exists
              (fun b -> Float.abs (x -. b) <= marking_halfwidth)
              boundaries
          then marking_intensity
          else road_intensity
        else off_road_intensity
      in
      (* Vehicles overwrite the ground; a car is ~1.8m wide, ~4m long. *)
      let with_vehicle =
        List.fold_left
          (fun acc (v : Scene.vehicle) ->
            let dv = v.Scene.distance in
            if Float.abs (d -. dv) <= 2.5 then begin
              let v_lat =
                Scene.lane_center_at scene dv
                +. (float_of_int (Scene.lane_offset_of scene v) *. w)
              in
              if Float.abs (x -. v_lat) <= 0.9 +. pixel_halfwidth then
                vehicle_intensity
              else acc
            end
            else acc)
          base scene.Scene.traffic
      in
      (* Weather model: fog mixes toward gray with distance; rain darkens
         slightly and is noisier. *)
      let weathered =
        match scene.Scene.weather with
        | Scene.Clear -> with_vehicle
        | Scene.Fog ->
            let fog = 1.0 -. exp (-.d /. 25.0) in
            ((1.0 -. fog) *. with_vehicle) +. (fog *. 0.7)
        | Scene.Rain -> (with_vehicle *. 0.85) +. 0.02
      in
      let noisy =
        match rng with
        | None -> weathered
        | Some rng ->
            let std =
              match scene.Scene.weather with
              | Scene.Clear -> cfg.noise_std
              | Scene.Fog -> cfg.noise_std *. 2.0
              | Scene.Rain -> cfg.noise_std *. 5.0
            in
            weathered +. Rng.gaussian_scaled rng ~mean:0.0 ~std
      in
      out.((r * cfg.width) + c) <- Float.max 0.0 (Float.min 1.0 noisy)
    done
  done;
  out

let to_ascii cfg image =
  let ramp = " .:-=+*#%@" in
  let buf = Buffer.create ((cfg.width + 1) * cfg.height) in
  for r = 0 to cfg.height - 1 do
    for c = 0 to cfg.width - 1 do
      let v = image.((r * cfg.width) + c) in
      let idx =
        Stdlib.min (String.length ramp - 1)
          (int_of_float (v *. float_of_int (String.length ramp)))
      in
      Buffer.add_char buf ramp.[idx]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
