(** Ground-truth affordances: the low-dimensional outputs the direct
    perception network is trained to produce (next waypoint + orientation,
    as in the paper's Audi network).

    Output vector layout: index {!waypoint_index} is the lateral position
    (m, left-positive) of the point the vehicle should steer toward,
    taken on the ego lane center at the lookahead distance; index
    {!orientation_index} is the road heading there relative to the ego
    heading (rad).  Positive values mean "steer left". *)

val lookahead : float
(** Lookahead distance (m). *)

val dim : int
val waypoint_index : int
val orientation_index : int

val ground_truth : Scene.t -> Dpv_tensor.Vec.t

val waypoint : Scene.t -> float
val orientation : Scene.t -> float
