(** Waypoint-following controller and closed-loop simulation.

    Direct perception exists to feed a controller (the paper's
    introduction); this module closes that loop.  A pure-pursuit law
    turns the predicted waypoint into a curvature command, and a simple
    kinematic simulation advances the ego vehicle along a road while the
    policy (ground truth, or the trained network) supplies affordances
    frame by frame. *)

type command = { curvature : float  (** commanded path curvature, 1/m *) }

val pure_pursuit : waypoint:float -> lookahead:float -> command
(** Classic pure pursuit: [k = 2 * waypoint / lookahead^2]. *)

type sim_config = {
  step : float;      (** integration step along the road, m *)
  distance : float;  (** total distance to drive, m *)
}

val default_sim_config : sim_config
(** 2.5 m steps over 250 m. *)

type trace = {
  offsets : float array;        (** lateral offset from lane center, per step *)
  heading_errors : float array;
  commands : float array;       (** curvature commands issued *)
  max_abs_offset : float;
  rms_offset : float;
  departures : int;             (** steps with |offset| > half a lane width *)
}

val simulate :
  ?rng:Dpv_tensor.Rng.t ->
  camera:Camera.config ->
  road:Road.t ->
  ego_lane:int ->
  ?initial_offset:float ->
  ?initial_heading_error:float ->
  policy:(Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t) ->
  sim:sim_config ->
  unit ->
  trace
(** Drives the ego vehicle: at each step the current scene is rendered
    through [camera], [policy] maps the image to an affordance vector
    (waypoint, orientation), pure pursuit issues a command, and the
    kinematic state integrates
    [heading' += (cmd - road curvature) * ds], [offset' += heading * ds]. *)

val ground_truth_policy :
  road:Road.t ->
  ego_lane:int ->
  (float * float * float) ref ->
  Dpv_tensor.Vec.t ->
  Dpv_tensor.Vec.t
(** Oracle policy for baselines: ignores the image and answers from the
    simulation state (distance driven, offset, heading — exposed through
    the shared state ref used by {!simulate_with_state}). *)

val simulate_with_state :
  ?rng:Dpv_tensor.Rng.t ->
  camera:Camera.config ->
  road:Road.t ->
  ego_lane:int ->
  ?initial_offset:float ->
  ?initial_heading_error:float ->
  state_ref:(float * float * float) ref ->
  policy:(Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t) ->
  sim:sim_config ->
  unit ->
  trace
(** Like {!simulate} but also publishes the (distance, offset, heading)
    state into [state_ref] before each policy call, so oracle policies
    can read it. *)
