(** Road geometry.

    A road segment is a clothoid-like arc described by its curvature and
    curvature rate at the ego position.  Lateral positions use a
    left-positive convention: positive curvature bends the road to the
    left, negative to the right. *)

type t = {
  curvature : float;       (** 1/m at the ego position *)
  curvature_rate : float;  (** 1/m^2, change of curvature per meter *)
  num_lanes : int;
  lane_width : float;      (** m *)
}

val make :
  ?lane_width:float -> curvature:float -> curvature_rate:float -> num_lanes:int -> unit -> t

val centerline_offset : t -> float -> float
(** Lateral offset (m) of the road at longitudinal distance [d] (m),
    relative to a straight-ahead path: [0.5*k*d^2 + k'*d^3/6]. *)

val heading : t -> float -> float
(** Road heading (rad) at distance [d]: [k*d + 0.5*k'*d^2]. *)

val curvature_at : t -> float -> float
(** [k + k'*d]. *)

val half_width : t -> float
(** Distance from road centerline to either road edge. *)
