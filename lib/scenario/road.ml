type t = {
  curvature : float;
  curvature_rate : float;
  num_lanes : int;
  lane_width : float;
}

let make ?(lane_width = 3.5) ~curvature ~curvature_rate ~num_lanes () =
  if num_lanes < 1 then invalid_arg "Road.make: num_lanes < 1";
  if lane_width <= 0.0 then invalid_arg "Road.make: lane_width <= 0";
  { curvature; curvature_rate; num_lanes; lane_width }

let centerline_offset road d =
  (0.5 *. road.curvature *. d *. d)
  +. (road.curvature_rate *. d *. d *. d /. 6.0)

let heading road d =
  (road.curvature *. d) +. (0.5 *. road.curvature_rate *. d *. d)

let curvature_at road d = road.curvature +. (road.curvature_rate *. d)

let half_width road = 0.5 *. float_of_int road.num_lanes *. road.lane_width
