module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

type command = { curvature : float }

(* Pure pursuit: steer along the circle through the ego position and the
   waypoint at the lookahead distance; for small angles its curvature is
   2 * lateral / distance^2. *)
let pure_pursuit ~waypoint ~lookahead =
  { curvature = 2.0 *. waypoint /. (lookahead *. lookahead) }

type sim_config = { step : float; distance : float }

let default_sim_config = { step = 2.5; distance = 250.0 }

type trace = {
  offsets : float array;
  heading_errors : float array;
  commands : float array;
  max_abs_offset : float;
  rms_offset : float;
  departures : int;
}

let simulate_with_state ?rng ~camera ~road ~ego_lane ?(initial_offset = 0.0)
    ?(initial_heading_error = 0.0) ~state_ref ~policy ~sim () =
  if sim.step <= 0.0 || sim.distance <= 0.0 then
    invalid_arg "Controller.simulate: non-positive step or distance";
  let n_steps = int_of_float (Float.ceil (sim.distance /. sim.step)) in
  let offsets = Array.make n_steps 0.0 in
  let heading_errors = Array.make n_steps 0.0 in
  let commands = Array.make n_steps 0.0 in
  let offset = ref initial_offset and heading = ref initial_heading_error in
  let departures = ref 0 in
  let half_lane = road.Road.lane_width /. 2.0 in
  for i = 0 to n_steps - 1 do
    let s = float_of_int i *. sim.step in
    (* The road as seen from the current position: its local curvature
       advances along the clothoid. *)
    let road_here =
      { road with Road.curvature = Road.curvature_at road s }
    in
    state_ref := (s, !offset, !heading);
    let scene =
      Scene.make ~lateral_offset:!offset ~heading_error:!heading
        ~road:road_here ~ego_lane ()
    in
    let image = Camera.render ?rng camera scene in
    let affordance = policy image in
    let cmd =
      pure_pursuit ~waypoint:affordance.(Affordance.waypoint_index)
        ~lookahead:Affordance.lookahead
    in
    offsets.(i) <- !offset;
    heading_errors.(i) <- !heading;
    commands.(i) <- cmd.curvature;
    if Float.abs !offset > half_lane then incr departures;
    (* Kinematics in the lane frame: commanding more curvature than the
       road has rotates the ego toward the lane center. *)
    heading := !heading +. ((cmd.curvature -. road_here.Road.curvature) *. sim.step);
    offset := !offset +. (!heading *. sim.step)
  done;
  let max_abs_offset = Vec.norm_inf offsets in
  let rms_offset =
    sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 offsets
          /. float_of_int n_steps)
  in
  {
    offsets;
    heading_errors;
    commands;
    max_abs_offset;
    rms_offset;
    departures = !departures;
  }

let simulate ?rng ~camera ~road ~ego_lane ?initial_offset
    ?initial_heading_error ~policy ~sim () =
  let state_ref = ref (0.0, 0.0, 0.0) in
  simulate_with_state ?rng ~camera ~road ~ego_lane ?initial_offset
    ?initial_heading_error ~state_ref ~policy ~sim ()

let ground_truth_policy ~road ~ego_lane state_ref _image =
  let s, offset, heading = !state_ref in
  let road_here = { road with Road.curvature = Road.curvature_at road s } in
  let scene =
    Scene.make ~lateral_offset:offset ~heading_error:heading ~road:road_here
      ~ego_lane ()
  in
  Affordance.ground_truth scene
