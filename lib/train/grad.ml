module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network

type layer_grad =
  | Dense_grad of { d_weights : Mat.t; d_bias : Vec.t }
  | Bn_grad of { d_gamma : Vec.t; d_beta : Vec.t }
  | No_grad

type t = layer_grad array

let zeros net =
  Array.of_list
    (List.map
       (fun l ->
         match l with
         | Layer.Dense { weights; bias } | Layer.Conv2d { weights; bias; _ } ->
             Dense_grad
               {
                 d_weights =
                   Mat.zeros ~rows:(Mat.rows weights) ~cols:(Mat.cols weights);
                 d_bias = Vec.zeros (Vec.dim bias);
               }
         | Layer.Batch_norm { gamma; _ } ->
             Bn_grad
               {
                 d_gamma = Vec.zeros (Vec.dim gamma);
                 d_beta = Vec.zeros (Vec.dim gamma);
               }
         | Layer.Relu | Layer.Sigmoid | Layer.Tanh -> No_grad)
       (Network.layers net))

(* Direct convolution backward: scatter the upstream gradient to kernel
   weights (dW), per-channel bias (db) and the input (dx). *)
let conv_backward (shape : Layer.conv_shape) weights ~x ~g =
  let oh = Layer.conv_out_height shape and ow = Layer.conv_out_width shape in
  let ih = shape.Layer.in_height and iw = shape.Layer.in_width in
  let kh = shape.Layer.kernel_h and kw = shape.Layer.kernel_w in
  let d_weights = Mat.zeros ~rows:(Mat.rows weights) ~cols:(Mat.cols weights) in
  let d_bias = Vec.zeros shape.Layer.out_channels in
  let dx = Vec.zeros (Vec.dim x) in
  for oc = 0 to shape.Layer.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let gout = g.((oc * oh * ow) + (oy * ow) + ox) in
        if gout <> 0.0 then begin
          d_bias.(oc) <- d_bias.(oc) +. gout;
          for ic = 0 to shape.Layer.in_channels - 1 do
            for ky = 0 to kh - 1 do
              let y = (oy * shape.Layer.stride) + ky - shape.Layer.padding in
              if y >= 0 && y < ih then
                for kx = 0 to kw - 1 do
                  let xpos = (ox * shape.Layer.stride) + kx - shape.Layer.padding in
                  if xpos >= 0 && xpos < iw then begin
                    let col = (ic * kh * kw) + (ky * kw) + kx in
                    let xin = (ic * ih * iw) + (y * iw) + xpos in
                    Mat.set d_weights oc col
                      (Mat.get d_weights oc col +. (gout *. x.(xin)));
                    dx.(xin) <- dx.(xin) +. (gout *. Mat.get weights oc col)
                  end
                done
            done
          done
        end
      done
    done
  done;
  (Dense_grad { d_weights; d_bias }, dx)

(* Backward rule per layer.  [x] is the layer input, [y] its output and
   [g] the upstream gradient dL/dy; returns (parameter grad, dL/dx). *)
let backward_layer layer ~x ~y ~g =
  match layer with
  | Layer.Conv2d { shape; weights; _ } -> conv_backward shape weights ~x ~g
  | Layer.Dense { weights; _ } ->
      let d_weights = Mat.outer g x in
      let d_bias = Vec.copy g in
      let dx = Mat.matvec_t weights g in
      (Dense_grad { d_weights; d_bias }, dx)
  | Layer.Relu ->
      (No_grad, Vec.init (Vec.dim x) (fun i -> if x.(i) > 0.0 then g.(i) else 0.0))
  | Layer.Sigmoid ->
      (No_grad, Vec.init (Vec.dim y) (fun i -> g.(i) *. y.(i) *. (1.0 -. y.(i))))
  | Layer.Tanh ->
      (No_grad, Vec.init (Vec.dim y) (fun i -> g.(i) *. (1.0 -. (y.(i) *. y.(i)))))
  | Layer.Batch_norm { gamma; mean; var; eps; _ } ->
      let d = Vec.dim gamma in
      let inv_std = Vec.init d (fun i -> 1.0 /. sqrt (var.(i) +. eps)) in
      let d_gamma =
        Vec.init d (fun i -> g.(i) *. (x.(i) -. mean.(i)) *. inv_std.(i))
      in
      let d_beta = Vec.copy g in
      let dx = Vec.init d (fun i -> g.(i) *. gamma.(i) *. inv_std.(i)) in
      (Bn_grad { d_gamma; d_beta }, dx)

let backward net ~activations ~d_output =
  let n = Network.num_layers net in
  if Array.length activations <> n + 1 then
    invalid_arg "Grad.backward: wrong activations length";
  let grads = Array.make n No_grad in
  let g = ref d_output in
  for l = n downto 1 do
    let layer = Network.layer net l in
    let pg, dx =
      backward_layer layer ~x:activations.(l - 1) ~y:activations.(l) ~g:!g
    in
    grads.(l - 1) <- pg;
    g := dx
  done;
  (grads, !g)

let accumulate ~into g =
  if Array.length into <> Array.length g then
    invalid_arg "Grad.accumulate: length mismatch";
  Array.iteri
    (fun i gi ->
      match (into.(i), gi) with
      | Dense_grad a, Dense_grad b ->
          into.(i) <-
            Dense_grad
              {
                d_weights = Mat.add a.d_weights b.d_weights;
                d_bias = Vec.add a.d_bias b.d_bias;
              }
      | Bn_grad a, Bn_grad b ->
          into.(i) <-
            Bn_grad
              {
                d_gamma = Vec.add a.d_gamma b.d_gamma;
                d_beta = Vec.add a.d_beta b.d_beta;
              }
      | No_grad, No_grad -> ()
      | _ -> invalid_arg "Grad.accumulate: structure mismatch")
    g

let scale g c =
  Array.iteri
    (fun i gi ->
      match gi with
      | Dense_grad a ->
          g.(i) <-
            Dense_grad
              { d_weights = Mat.scale c a.d_weights; d_bias = Vec.scale c a.d_bias }
      | Bn_grad a ->
          g.(i) <-
            Bn_grad { d_gamma = Vec.scale c a.d_gamma; d_beta = Vec.scale c a.d_beta }
      | No_grad -> ())
    g

let sample_gradient net loss ~input ~target =
  let activations = Network.activations net input in
  let output = activations.(Network.num_layers net) in
  let value = Loss.value loss ~output ~target in
  let d_output = Loss.gradient loss ~output ~target in
  let grads, _ = backward net ~activations ~d_output in
  (value, grads)
