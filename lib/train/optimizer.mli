(** First-order optimizers.

    An optimizer owns mutable per-parameter state (momentum / Adam
    moments) shaped like the network it was created for, and applies
    gradient updates *in place* on the network's parameter arrays. *)

type t

val sgd : lr:float -> Dpv_nn.Network.t -> t
val momentum : lr:float -> mu:float -> Dpv_nn.Network.t -> t
val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> Dpv_nn.Network.t -> t

val step : t -> Dpv_nn.Network.t -> Grad.t -> unit
(** Applies one update.  The network must be the one the optimizer was
    created for (same parameter shapes). *)

val set_lr : t -> float -> unit
val lr : t -> float
val name : t -> string
