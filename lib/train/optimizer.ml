module Mat = Dpv_tensor.Mat
module Vec = Dpv_tensor.Vec
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network

type algo =
  | Sgd
  | Momentum of float
  | Adam of { beta1 : float; beta2 : float; eps : float }

(* First and second moment buffers per parameter tensor; SGD leaves them
   unused, momentum uses only the first. *)
type layer_state =
  | Dense_state of { m_w : Mat.t; v_w : Mat.t; m_b : Vec.t; v_b : Vec.t }
  | Bn_state of { m_g : Vec.t; v_g : Vec.t; m_be : Vec.t; v_be : Vec.t }
  | No_state

type t = {
  mutable lr : float;
  algo : algo;
  state : layer_state array;
  mutable steps : int;
}

let make_state net =
  Array.of_list
    (List.map
       (fun l ->
         match l with
         | Layer.Dense { weights; bias } | Layer.Conv2d { weights; bias; _ } ->
             let rows = Mat.rows weights and cols = Mat.cols weights in
             Dense_state
               {
                 m_w = Mat.zeros ~rows ~cols;
                 v_w = Mat.zeros ~rows ~cols;
                 m_b = Vec.zeros (Vec.dim bias);
                 v_b = Vec.zeros (Vec.dim bias);
               }
         | Layer.Batch_norm { gamma; _ } ->
             let d = Vec.dim gamma in
             Bn_state
               {
                 m_g = Vec.zeros d;
                 v_g = Vec.zeros d;
                 m_be = Vec.zeros d;
                 v_be = Vec.zeros d;
               }
         | Layer.Relu | Layer.Sigmoid | Layer.Tanh -> No_state)
       (Network.layers net))

let sgd ~lr net = { lr; algo = Sgd; state = make_state net; steps = 0 }

let momentum ~lr ~mu net =
  { lr; algo = Momentum mu; state = make_state net; steps = 0 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr net =
  { lr; algo = Adam { beta1; beta2; eps }; state = make_state net; steps = 0 }

(* Scalar update on one coordinate given its moment accessors. *)
let scalar_update t ~get_p ~set_p ~g ~get_m ~set_m ~get_v ~set_v =
  match t.algo with
  | Sgd -> set_p (get_p () -. (t.lr *. g))
  | Momentum mu ->
      let m = (mu *. get_m ()) +. g in
      set_m m;
      set_p (get_p () -. (t.lr *. m))
  | Adam { beta1; beta2; eps } ->
      let m = (beta1 *. get_m ()) +. ((1.0 -. beta1) *. g) in
      let v = (beta2 *. get_v ()) +. ((1.0 -. beta2) *. g *. g) in
      set_m m;
      set_v v;
      let tstep = float_of_int t.steps in
      let m_hat = m /. (1.0 -. (beta1 ** tstep)) in
      let v_hat = v /. (1.0 -. (beta2 ** tstep)) in
      set_p (get_p () -. (t.lr *. m_hat /. (sqrt v_hat +. eps)))

let update_vec t ~param ~grad ~m ~v =
  for i = 0 to Vec.dim param - 1 do
    scalar_update t
      ~get_p:(fun () -> param.(i))
      ~set_p:(fun x -> param.(i) <- x)
      ~g:grad.(i)
      ~get_m:(fun () -> m.(i))
      ~set_m:(fun x -> m.(i) <- x)
      ~get_v:(fun () -> v.(i))
      ~set_v:(fun x -> v.(i) <- x)
  done

let update_mat t ~param ~grad ~m ~v =
  for i = 0 to Mat.rows param - 1 do
    for j = 0 to Mat.cols param - 1 do
      scalar_update t
        ~get_p:(fun () -> Mat.get param i j)
        ~set_p:(fun x -> Mat.set param i j x)
        ~g:(Mat.get grad i j)
        ~get_m:(fun () -> Mat.get m i j)
        ~set_m:(fun x -> Mat.set m i j x)
        ~get_v:(fun () -> Mat.get v i j)
        ~set_v:(fun x -> Mat.set v i j x)
    done
  done

let step t net grads =
  t.steps <- t.steps + 1;
  let layers = Array.of_list (Network.layers net) in
  if Array.length layers <> Array.length grads then
    invalid_arg "Optimizer.step: grad length mismatch";
  Array.iteri
    (fun i layer ->
      match (layer, grads.(i), t.state.(i)) with
      | ( (Layer.Dense { weights; bias } | Layer.Conv2d { weights; bias; _ }),
          Grad.Dense_grad { d_weights; d_bias },
          Dense_state s ) ->
          update_mat t ~param:weights ~grad:d_weights ~m:s.m_w ~v:s.v_w;
          update_vec t ~param:bias ~grad:d_bias ~m:s.m_b ~v:s.v_b
      | ( Layer.Batch_norm { gamma; beta; _ },
          Grad.Bn_grad { d_gamma; d_beta },
          Bn_state s ) ->
          update_vec t ~param:gamma ~grad:d_gamma ~m:s.m_g ~v:s.v_g;
          update_vec t ~param:beta ~grad:d_beta ~m:s.m_be ~v:s.v_be
      | (Layer.Relu | Layer.Sigmoid | Layer.Tanh), Grad.No_grad, No_state -> ()
      | _ -> invalid_arg "Optimizer.step: structure mismatch")
    layers

let set_lr t lr = t.lr <- lr
let lr t = t.lr

let name t =
  match t.algo with
  | Sgd -> "sgd"
  | Momentum _ -> "momentum"
  | Adam _ -> "adam"
