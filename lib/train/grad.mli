(** Backpropagation through a {!Dpv_nn.Network}.

    Batch-norm layers use their stored (running) statistics during the
    forward pass — "frozen-statistics" batch norm — so the backward pass
    treats the normalization as a fixed per-dimension affine map and only
    [gamma]/[beta] receive gradients.  The running statistics themselves
    are refreshed per batch by {!Trainer}. *)

type layer_grad =
  | Dense_grad of { d_weights : Dpv_tensor.Mat.t; d_bias : Dpv_tensor.Vec.t }
  | Bn_grad of { d_gamma : Dpv_tensor.Vec.t; d_beta : Dpv_tensor.Vec.t }
  | No_grad

type t = layer_grad array
(** One entry per network layer, in layer order. *)

val zeros : Dpv_nn.Network.t -> t

val backward :
  Dpv_nn.Network.t ->
  activations:Dpv_tensor.Vec.t array ->
  d_output:Dpv_tensor.Vec.t ->
  t * Dpv_tensor.Vec.t
(** [backward net ~activations ~d_output] returns per-layer parameter
    gradients and the gradient w.r.t. the network input.  [activations]
    must come from {!Dpv_nn.Network.activations} on the same input. *)

val accumulate : into:t -> t -> unit
val scale : t -> float -> unit

val sample_gradient :
  Dpv_nn.Network.t -> Loss.t -> input:Dpv_tensor.Vec.t -> target:Dpv_tensor.Vec.t -> float * t
(** Loss value and parameter gradient for a single example. *)
