module Vec = Dpv_tensor.Vec

type t = Mse | Bce_with_logits

let check_dims output target =
  if Vec.dim output <> Vec.dim target then
    invalid_arg "Loss: output/target dimension mismatch"

let sigmoid z = 1.0 /. (1.0 +. exp (-.z))

(* Stable BCE on a logit z with target c in {0,1}:
   max(z,0) - z*c + log(1 + exp(-|z|)). *)
let bce_scalar z c =
  Float.max z 0.0 -. (z *. c) +. log (1.0 +. exp (-.Float.abs z))

let value loss ~output ~target =
  check_dims output target;
  match loss with
  | Mse ->
      0.5
      *. Array.fold_left ( +. ) 0.0
           (Array.mapi (fun i y -> (y -. target.(i)) ** 2.0) output)
  | Bce_with_logits ->
      Array.fold_left ( +. ) 0.0
        (Array.mapi (fun i z -> bce_scalar z target.(i)) output)

let gradient loss ~output ~target =
  check_dims output target;
  match loss with
  | Mse -> Vec.sub output target
  | Bce_with_logits ->
      Array.mapi (fun i z -> sigmoid z -. target.(i)) output

let name = function Mse -> "mse" | Bce_with_logits -> "bce-with-logits"
