(** Mini-batch training loop.

    Training mutates the given network's parameter arrays in place and
    also refreshes batch-norm running statistics from each mini-batch
    (exponential moving average with [bn_momentum]). *)

type config = {
  epochs : int;
  batch_size : int;
  loss : Loss.t;
  bn_momentum : float;  (** EMA factor for batch-norm statistics, e.g. 0.1 *)
  shuffle_each_epoch : bool;
}

val default_config : config
(** 50 epochs, batch 32, MSE, bn_momentum 0.1, shuffling on. *)

type history = { epoch_losses : float array }

val fit :
  ?on_epoch:(epoch:int -> loss:float -> unit) ->
  ?rng:Dpv_tensor.Rng.t ->
  config ->
  Optimizer.t ->
  Dpv_nn.Network.t ->
  Dataset.t ->
  history

val evaluate : Loss.t -> Dpv_nn.Network.t -> Dataset.t -> float
(** Mean loss per example. *)

val binary_accuracy : Dpv_nn.Network.t -> Dataset.t -> float
(** For 1-dim logit outputs and 0/1 targets: fraction classified correctly
    with the decision threshold at logit 0. *)

val regression_mae : Dpv_nn.Network.t -> Dataset.t -> float array
(** Per-output mean absolute error. *)

val insert_identity_batch_norm :
  Dpv_nn.Network.t -> inputs:Dpv_tensor.Vec.t array -> Dpv_nn.Network.t
(** Insert a batch-norm layer after every hidden Dense layer (each Dense
    except the output layer), with [mean]/[var] measured over the given
    inputs and [gamma]/[beta] calibrated so the inserted layer is exactly
    the identity.  The returned network computes the same function; a
    short fine-tuning pass then trains the BN parameters away from
    identity.  This is how a deployed inference network acquires BN
    layers from pre-trained statistics. *)
