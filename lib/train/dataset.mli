(** In-memory supervised datasets. *)

type t = {
  inputs : Dpv_tensor.Vec.t array;
  targets : Dpv_tensor.Vec.t array;
}

val create :
  inputs:Dpv_tensor.Vec.t array -> targets:Dpv_tensor.Vec.t array -> t
(** Lengths must match and be non-zero; dimensions must be homogeneous. *)

val size : t -> int
val input_dim : t -> int
val target_dim : t -> int

val of_labelled : (Dpv_tensor.Vec.t * float) array -> t
(** Binary-classification convenience: scalar labels become 1-dim targets. *)

val split : Dpv_tensor.Rng.t -> t -> train_fraction:float -> t * t
(** Shuffled split; both sides are non-empty (train fraction is clamped). *)

val shuffle : Dpv_tensor.Rng.t -> t -> t

val batches : t -> batch_size:int -> (Dpv_tensor.Vec.t * Dpv_tensor.Vec.t) array array
(** Consecutive mini-batches covering the whole set (last may be short). *)

val subset : t -> indices:int array -> t
val map_inputs : t -> f:(Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t) -> t

val class_balance : t -> float
(** For 1-dim 0/1 targets: fraction of positive examples. *)
