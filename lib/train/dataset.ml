module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng

type t = { inputs : Vec.t array; targets : Vec.t array }

let create ~inputs ~targets =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Dataset.create: empty";
  if Array.length targets <> n then
    invalid_arg "Dataset.create: inputs/targets length mismatch";
  let di = Vec.dim inputs.(0) and dt = Vec.dim targets.(0) in
  Array.iter
    (fun x -> if Vec.dim x <> di then invalid_arg "Dataset: ragged inputs")
    inputs;
  Array.iter
    (fun y -> if Vec.dim y <> dt then invalid_arg "Dataset: ragged targets")
    targets;
  { inputs; targets }

let size d = Array.length d.inputs
let input_dim d = Vec.dim d.inputs.(0)
let target_dim d = Vec.dim d.targets.(0)

let of_labelled pairs =
  create
    ~inputs:(Array.map fst pairs)
    ~targets:(Array.map (fun (_, c) -> [| c |]) pairs)

let permutation rng n =
  let idx = Array.init n (fun i -> i) in
  Rng.shuffle_in_place rng idx;
  idx

let subset d ~indices =
  create
    ~inputs:(Array.map (fun i -> d.inputs.(i)) indices)
    ~targets:(Array.map (fun i -> d.targets.(i)) indices)

let shuffle rng d = subset d ~indices:(permutation rng (size d))

let split rng d ~train_fraction =
  let n = size d in
  let n_train =
    Stdlib.max 1 (Stdlib.min (n - 1) (int_of_float (train_fraction *. float_of_int n)))
  in
  if n < 2 then invalid_arg "Dataset.split: need at least 2 examples";
  let idx = permutation rng n in
  ( subset d ~indices:(Array.sub idx 0 n_train),
    subset d ~indices:(Array.sub idx n_train (n - n_train)) )

let batches d ~batch_size =
  if batch_size <= 0 then invalid_arg "Dataset.batches: batch_size <= 0";
  let n = size d in
  let n_batches = (n + batch_size - 1) / batch_size in
  Array.init n_batches (fun b ->
      let start = b * batch_size in
      let len = Stdlib.min batch_size (n - start) in
      Array.init len (fun k -> (d.inputs.(start + k), d.targets.(start + k))))

let map_inputs d ~f = create ~inputs:(Array.map f d.inputs) ~targets:d.targets

let class_balance d =
  if target_dim d <> 1 then invalid_arg "Dataset.class_balance: 1-dim targets only";
  let pos =
    Array.fold_left (fun acc y -> if y.(0) > 0.5 then acc + 1 else acc) 0 d.targets
  in
  float_of_int pos /. float_of_int (size d)
