(** Training losses.

    A loss pairs the scalar value with its gradient w.r.t. the network
    output, which is what backpropagation consumes. *)

type t =
  | Mse  (** [0.5 * ||y - target||^2], for regression heads. *)
  | Bce_with_logits
      (** Numerically-stable binary cross-entropy on a 1-dim logit output;
          targets must be 0 or 1.  This is the loss for the input property
          characterizer. *)

val value : t -> output:Dpv_tensor.Vec.t -> target:Dpv_tensor.Vec.t -> float

val gradient :
  t -> output:Dpv_tensor.Vec.t -> target:Dpv_tensor.Vec.t -> Dpv_tensor.Vec.t
(** Gradient of the loss w.r.t. [output]. *)

val name : t -> string
