module Vec = Dpv_tensor.Vec
module Rng = Dpv_tensor.Rng
module Layer = Dpv_nn.Layer
module Network = Dpv_nn.Network

type config = {
  epochs : int;
  batch_size : int;
  loss : Loss.t;
  bn_momentum : float;
  shuffle_each_epoch : bool;
}

let default_config =
  {
    epochs = 50;
    batch_size = 32;
    loss = Loss.Mse;
    bn_momentum = 0.1;
    shuffle_each_epoch = true;
  }

type history = { epoch_losses : float array }

(* Refresh batch-norm running statistics: for every BN layer, the inputs
   it saw in this batch update its stored mean/var by EMA.  The first
   batch sets the statistics outright (momentum 1), otherwise the stats
   start at (0, 1) and lag the real activation distribution long enough
   to stall training.  The parameter vectors live inside the layer and
   are mutated in place. *)
let update_bn_stats net ~momentum batch_activations =
  let n = Network.num_layers net in
  for l = 1 to n do
    match Network.layer net l with
    | Layer.Batch_norm { mean; var; _ } ->
        let inputs = List.map (fun acts -> acts.(l - 1)) batch_activations in
        let rows = Array.of_list inputs in
        let batch_mean = Dpv_tensor.Stats.columnwise_mean rows in
        let batch_std = Dpv_tensor.Stats.columnwise_std rows in
        for i = 0 to Vec.dim mean - 1 do
          mean.(i) <- ((1.0 -. momentum) *. mean.(i)) +. (momentum *. batch_mean.(i));
          let bv = batch_std.(i) *. batch_std.(i) in
          var.(i) <- ((1.0 -. momentum) *. var.(i)) +. (momentum *. bv)
        done
    | Layer.Dense _ | Layer.Conv2d _ | Layer.Relu | Layer.Sigmoid
    | Layer.Tanh ->
        ()
  done

let has_batch_norm net =
  List.exists
    (fun l ->
      match l with
      | Layer.Batch_norm _ -> true
      | Layer.Dense _ | Layer.Conv2d _ | Layer.Relu | Layer.Sigmoid
      | Layer.Tanh ->
          false)
    (Network.layers net)

let train_batch config optimizer net ~first_batch batch =
  (* Batch-norm layers normalize with statistics refreshed from the
     *current* batch before the gradient pass (a standard approximation:
     gradients do not flow through the statistics themselves).  The first
     batch sets the statistics outright. *)
  if has_batch_norm net then begin
    let momentum = if first_batch then 1.0 else config.bn_momentum in
    let warm =
      List.map (fun (x, _) -> Network.activations net x) (Array.to_list batch)
    in
    update_bn_stats net ~momentum warm
  end;
  let total = Grad.zeros net in
  let loss_sum = ref 0.0 in
  Array.iter
    (fun (input, target) ->
      let activations = Network.activations net input in
      let output = activations.(Network.num_layers net) in
      loss_sum := !loss_sum +. Loss.value config.loss ~output ~target;
      let d_output = Loss.gradient config.loss ~output ~target in
      let grads, _ = Grad.backward net ~activations ~d_output in
      Grad.accumulate ~into:total grads)
    batch;
  let n = float_of_int (Array.length batch) in
  Grad.scale total (1.0 /. n);
  Optimizer.step optimizer net total;
  !loss_sum /. n

let fit ?on_epoch ?rng config optimizer net dataset =
  let rng = match rng with Some r -> r | None -> Rng.create 0 in
  let epoch_losses = Array.make config.epochs 0.0 in
  for epoch = 0 to config.epochs - 1 do
    let data =
      if config.shuffle_each_epoch then Dataset.shuffle rng dataset else dataset
    in
    let batches = Dataset.batches data ~batch_size:config.batch_size in
    let loss_acc = ref 0.0 in
    Array.iteri
      (fun b batch ->
        let first_batch = epoch = 0 && b = 0 in
        loss_acc := !loss_acc +. train_batch config optimizer net ~first_batch batch)
      batches;
    let mean_loss = !loss_acc /. float_of_int (Array.length batches) in
    epoch_losses.(epoch) <- mean_loss;
    match on_epoch with
    | Some f -> f ~epoch ~loss:mean_loss
    | None -> ()
  done;
  { epoch_losses }

let evaluate loss net dataset =
  let total = ref 0.0 in
  for i = 0 to Dataset.size dataset - 1 do
    let output = Network.forward net dataset.Dataset.inputs.(i) in
    total := !total +. Loss.value loss ~output ~target:dataset.Dataset.targets.(i)
  done;
  !total /. float_of_int (Dataset.size dataset)

let binary_accuracy net dataset =
  if Dataset.target_dim dataset <> 1 then
    invalid_arg "Trainer.binary_accuracy: 1-dim targets required";
  let correct = ref 0 in
  for i = 0 to Dataset.size dataset - 1 do
    let logit = (Network.forward net dataset.Dataset.inputs.(i)).(0) in
    let predicted = if logit >= 0.0 then 1.0 else 0.0 in
    if predicted = dataset.Dataset.targets.(i).(0) then incr correct
  done;
  float_of_int !correct /. float_of_int (Dataset.size dataset)

let insert_identity_batch_norm net ~inputs =
  if Array.length inputs = 0 then
    invalid_arg "Trainer.insert_identity_batch_norm: no inputs";
  let n = Network.num_layers net in
  (* Hidden Dense layers are all Dense layers except the last layer of
     the network (the regression / logit head). *)
  let is_hidden_dense l =
    l < n
    &&
    match Network.layer net l with
    | Layer.Dense _ -> true
    | Layer.Conv2d _ | Layer.Batch_norm _ | Layer.Relu | Layer.Sigmoid
    | Layer.Tanh ->
        false
  in
  let all_activations = Array.map (Network.activations net) inputs in
  (* Insert from the deepest layer backwards so indices stay valid. *)
  let rec go net l =
    if l = 0 then net
    else if is_hidden_dense l then begin
      let rows = Array.map (fun acts -> acts.(l)) all_activations in
      let mean = Dpv_tensor.Stats.columnwise_mean rows in
      let std = Dpv_tensor.Stats.columnwise_std rows in
      let eps = 1e-5 in
      let var = Array.map (fun s -> s *. s) std in
      let gamma = Array.map (fun v -> sqrt (v +. eps)) var in
      let beta = Array.copy mean in
      let bn = Layer.Batch_norm { gamma; beta; mean; var; eps } in
      go (Network.insert_layer net ~after:l bn) (l - 1)
    end
    else go net (l - 1)
  in
  go net n

let regression_mae net dataset =
  let d = Dataset.target_dim dataset in
  let acc = Array.make d 0.0 in
  for i = 0 to Dataset.size dataset - 1 do
    let output = Network.forward net dataset.Dataset.inputs.(i) in
    for j = 0 to d - 1 do
      acc.(j) <- acc.(j) +. Float.abs (output.(j) -. dataset.Dataset.targets.(i).(j))
    done
  done;
  Array.map (fun s -> s /. float_of_int (Dataset.size dataset)) acc
