(** Deterministic fault injection for chaos-style testing.

    The solver and campaign stack advertise a recovery ladder (dense
    fallback, deadline retry, crash isolation, skip-with-degraded
    report).  This module lets tests and CI {e prove} each rung fires:
    a handful of named injection sites are compiled into the hot paths
    behind a single enabled-flag check, and a configured site raises or
    corrupts exactly on its Nth dynamic occurrence.

    Disabled (the default), every site is one relaxed atomic load —
    no counters move and no randomness is drawn — so production and
    benchmark runs pay nothing measurable.

    Occurrence counting is global and atomic, so a spec like
    [task-crash=2] means "the second time {e any} domain reaches the
    task-crash site", which is deterministic whenever the call order
    is (sequential campaigns, single-runner pools).  Each site fires at
    most once per configuration.

    Configuration comes either from {!configure} (tests) or from the
    [DPV_FAULTS] environment variable (CLI and bench executables call
    {!init_from_env} at startup; the library never reads the
    environment on its own, so [dune runtest] stays deterministic). *)

type site =
  | Lp_trouble          (** raise [Simplex.Numerical_trouble] at [resolve]
                            entry, {e outside} its internal fallback — the
                            exception escapes to the query level *)
  | Pivot_corrupt       (** silently scribble on the basis inverse after a
                            pivot; caught by the post-solve residual check *)
  | Refactor_singular   (** refactorization reports a singular basis *)
  | Deadline_jitter     (** one [Clock.expired] check on a finite deadline
                            returns true early *)
  | Task_crash          (** a campaign query task raises mid-flight *)
  | Journal_crash       (** a journal write fails with [Sys_error] *)
  | Lp_unbounded        (** a branch-and-bound node's LP relaxation
                            reports [Unbounded] — with exact arithmetic
                            this is impossible below a bounded root, so
                            the site models the numerical artifact the
                            solvers must survive without abandoning the
                            search *)
  | Absint_stale        (** the incremental abstract-interpretation guide
                            serves a stale cached layer state once: a
                            consult that should have invalidated part of
                            its prefix cache skips the invalidation.  The
                            guide's debug cross-check (active whenever the
                            harness is enabled) must detect the divergence
                            against a from-scratch propagation and fall
                            back *)
  | Serve_accept        (** the server's accept loop hiccups once: the
                            freshly accepted connection raises as if the
                            peer vanished between [accept] and the
                            handler handoff.  The loop must absorb it
                            and keep listening — a transient accept
                            failure is never a server exit *)
  | Serve_torn_frame    (** a client frame arrives torn: the framed read
                            reports truncation as if the peer died (or
                            lied about its length) mid-frame.  The
                            server must answer that connection with a
                            framed error and close {e that} connection
                            only *)
  | Serve_client_gone   (** a streamed reply write fails as if the peer
                            disconnected mid-stream.  The job must keep
                            running to its journal — the server records
                            the client loss and survives *)
  | Serve_scrape        (** one metrics scrape response is torn: the
                            HTTP responder declares more bytes than it
                            sends and drops the connection mid-body.
                            The endpoint must close {e that} connection
                            only — the accept loop, running jobs and
                            later scrapes are untouched *)

val all_sites : (string * site) list
(** Kebab-case spec names, e.g. [("task-crash", Task_crash)]. *)

val site_name : site -> string

val configure : ?seed:int -> (site * int) list -> unit
(** [configure ~seed plan] arms the harness: each [(site, n)] pair makes
    that site fire on its [n]th occurrence ([n >= 1]), once.  Counters
    reset.  [seed] (default 0) perturbs {e how} a corrupting site
    misbehaves (which basis-inverse entry [Pivot_corrupt] scribbles and
    by how much), not {e when} it fires. *)

val disable : unit -> unit
(** Disarm every site and zero the counters. *)

val parse_spec : string -> ((int * (site * int) list), string) result
(** Parse a [DPV_FAULTS] spec such as ["seed=7,task-crash=2,deadline-jitter=1"]
    into [(seed, plan)].  Unknown site names and malformed counts are
    reported, not ignored. *)

val init_from_env : unit -> unit
(** [configure] from the [DPV_FAULTS] environment variable if it is set
    and non-empty; print the parse error to stderr and exit 3 when it is
    malformed (a typo silently disabling chaos would defeat the point).
    Only executables should call this. *)

val enabled : unit -> bool

val fire : site -> bool
(** Count one occurrence of [site] and return whether this occurrence is
    the injected one.  When the harness is disabled this is a single
    atomic load returning [false] — nothing is counted. *)

val seed : unit -> int
(** The configured seed (0 when disabled). *)

val occurrences : site -> int
(** Dynamic occurrences counted since the last [configure]/[disable]. *)

val fired : site -> int
(** Times [fire] returned [true] for [site] since the last configure. *)

val describe : unit -> string
(** One-line summary of the armed plan (["disabled"] when off); used by
    reports so chaos runs are self-documenting. *)

val trace_sites : unit -> unit
(** Emit one [fault-site:<name>] instant trace event per injection site
    (with its occurrence/fired counters as arguments), so a written
    trace always names every site even when none fired.  Individual
    fires additionally emit [fault-fire:<name>] markers at the moment
    they happen.  No-op while tracing is disabled. *)
