let default_workers () =
  Stdlib.max 1 (Domain.recommended_domain_count () - 1)

(* One shared search state, read and written by every worker.  The
   incumbent needs a compound compare-and-publish, so it lives behind a
   mutex; everything touched once per node at most rides on atomics.
   Contention is negligible: each critical section is a few loads
   against an LP solve per node. *)
type shared = {
  incumbent : (float * float array) option ref;
  incumbent_lock : Mutex.t;
  nodes : int Atomic.t;
  lps : int Atomic.t;
  updates : int Atomic.t;
  found : bool Atomic.t;          (* an incumbent exists (find_first exit) *)
  hit_limit : bool Atomic.t;
  hit_deadline : bool Atomic.t;
  relaxation_unbounded : bool Atomic.t;  (* root LP unbounded: halt *)
  unbounded_truncated : bool Atomic.t;   (* non-root artifact: go on *)
  absint_fixes : int Atomic.t;
  absint_prunes : int Atomic.t;
}

let solve_parallel ~(options : Milp.options) model =
  let trace_t0 = Dpv_obs.Trace.begin_ns () in
  let sense, _ = Lp.objective model in
  let better a b =
    match sense with Lp.Minimize -> a < b -. 1e-12 | Lp.Maximize -> a > b +. 1e-12
  in
  let deadline = Clock.deadline_after options.Milp.time_limit_s in
  let workers = options.Milp.workers in
  let s =
    {
      incumbent = ref None;
      incumbent_lock = Mutex.create ();
      nodes = Atomic.make 0;
      lps = Atomic.make 0;
      updates = Atomic.make 0;
      found = Atomic.make false;
      hit_limit = Atomic.make false;
      hit_deadline = Atomic.make false;
      relaxation_unbounded = Atomic.make false;
      unbounded_truncated = Atomic.make false;
      absint_fixes = Atomic.make 0;
      absint_prunes = Atomic.make 0;
    }
  in
  let per_worker_nodes = Array.make workers 0 in
  let lp_time = Array.make workers 0.0 in
  (* One persistent solver per worker, created lazily on the worker's
     own domain.  A stolen node still warm-starts: the thief syncs the
     node's integer bounds into its own handle and runs dual simplex
     from whatever basis that handle last held — a cold start happens
     only on each worker's first node. *)
  let handles = Array.make workers None in
  (* Likewise one stateful guide instance per worker: the factory's
     instances carry the incremental DeepPoly prefix cache, which is
     mutable and must stay confined to one domain.  Consecutive nodes
     of a subtree batch share long fixing prefixes, so the warm state
     survives within a batch; a stolen subtree simply diverges at a
     shallow layer and the instance re-propagates from there. *)
  let guides = Array.make workers None in
  let guide_for id =
    match options.Milp.absint with
    | None -> None
    | Some f -> (
        match guides.(id) with
        | Some _ as g -> g
        | None ->
            let g = f.Milp.new_guide () in
            guides.(id) <- Some g;
            Some g)
  in
  let guide_stats_before =
    match options.Milp.absint with
    | None -> Milp.empty_guide_stats
    | Some f -> f.Milp.guide_stats ()
  in
  let int_vars = Lp.integer_vars model in
  let solve_node id node =
    if options.Milp.lp_dense then Simplex.solve_dense node
    else begin
      let handle =
        match handles.(id) with
        | Some h -> h
        | None ->
            let h = Simplex.create model in
            handles.(id) <- Some h;
            h
      in
      List.iter
        (fun v ->
          let lo, up = Lp.var_bounds node v in
          Simplex.set_var_bounds handle v ~lo ~up)
        int_vars;
      Simplex.resolve handle
    end
  in
  let stop () =
    (options.Milp.find_first && Atomic.get s.found)
    || Atomic.get s.hit_limit || Atomic.get s.hit_deadline
    || Atomic.get s.relaxation_unbounded
  in
  let try_publish objective sol =
    Mutex.protect s.incumbent_lock (fun () ->
        match !(s.incumbent) with
        | Some (obj, _) when not (better objective obj) -> ()
        | _ ->
            s.incumbent := Some (objective, sol);
            Atomic.incr s.updates;
            Atomic.set s.found true)
  in
  let pruned_by_incumbent objective =
    Mutex.protect s.incumbent_lock (fun () ->
        match !(s.incumbent) with
        | Some (obj, _) -> not (better objective obj)
        | None -> false)
  in
  (* One pool task is a bounded subtree search, not a single node LP:
     the worker runs its own depth-first stack for up to [task_batch]
     nodes, so per-task pool overhead (two deque lock rounds and the
     shared pending counter) amortizes over the batch and consecutive
     node LPs stay on this worker's warm basis.  Two things leave the
     task: subtrees beyond [max_local_stack] — the *shallowest* stack
     entries, the largest open subtrees — spill back to the pool where
     idle workers steal them, and whatever the batch budget did not
     reach is re-enqueued when the task ends. *)
  let batch = Stdlib.max 1 options.Milp.task_batch in
  let max_local_stack = 8 in
  let rec split_at n l =
    if n = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
          let a, b = split_at (n - 1) rest in
          (x :: a, b)
  in
  let process id root =
    let stack = ref [ root ] in
    let spilled = ref [] in (* shallowest-first across spill rounds *)
    let processed = ref 0 in
    let truncated = ref false in
    while !stack <> [] && not !truncated do
      if !processed >= batch || stop () then truncated := true
      else if Atomic.get s.nodes >= options.Milp.max_nodes then begin
        Atomic.set s.hit_limit true;
        truncated := true
      end
      else if Clock.expired deadline then begin
        Atomic.set s.hit_deadline true;
        truncated := true
      end
      else begin
        let node = List.hd !stack in
        stack := List.tl !stack;
        (* Physical equality identifies the root: [branch_children]
           always allocates fresh child records, so only the original
           seeded model can ever be [==] to itself here. *)
        let is_root = node == model in
        (* Same guide protocol as the sequential solver: consult before
           the LP, prune without solving, fix implied phases first. *)
        let guidance =
          match guide_for id with
          | None -> None
          | Some g -> Some (g node)
        in
        match guidance with
        | Some g when g.Milp.prune -> Atomic.incr s.absint_prunes
        | _ -> (
        let node =
          match guidance with
          | Some { Milp.fix = _ :: _ as fix; _ } ->
              ignore (Atomic.fetch_and_add s.absint_fixes (List.length fix));
              List.fold_left
                (fun m (v, x) ->
                  Lp.set_var_bounds m v ~lo:(Some x) ~up:(Some x))
                node fix
          | _ -> node
        in
        incr processed;
        Atomic.incr s.nodes;
        per_worker_nodes.(id) <- per_worker_nodes.(id) + 1;
        Atomic.incr s.lps;
        let lp_started = Clock.now_s () in
        let status = solve_node id node in
        let status =
          if Faults.fire Faults.Lp_unbounded then Simplex.Unbounded else status
        in
        let lp_s = Clock.now_s () -. lp_started in
        lp_time.(id) <- lp_time.(id) +. lp_s;
        Milp.observe_lp_s lp_s;
        match status with
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
            if is_root then begin
              (* The root relaxation really is unbounded: no finite
                 bound exists, abandon the search and report. *)
              Atomic.set s.relaxation_unbounded true;
              truncated := true
            end
            else
              (* Below a bounded root this is a numerical artifact, not
                 an unboundedness proof (a child's feasible set is
                 contained in the root's).  Drop the subtree and keep
                 the other workers searching; the flag downgrades any
                 optimality claim at classification time. *)
              Atomic.set s.unbounded_truncated true
        | Simplex.Optimal { objective; solution } -> (
            if pruned_by_incumbent objective then ()
            else
              let branch_var =
                match (options.Milp.branch_rule, guidance) with
                | Milp.Bound_width, Some { Milp.widths = _ :: _ as widths; _ }
                  ->
                    Milp.find_branch_var_widest ~tol:options.Milp.int_tol node
                      solution widths
                | Milp.Guide_order, Some { Milp.widths = _ :: _ as widths; _ }
                  ->
                    Milp.find_branch_var_ordered ~tol:options.Milp.int_tol node
                      solution widths
                | _ ->
                    Milp.find_branch_var ~tol:options.Milp.int_tol node
                      solution
              in
              match branch_var with
              | None ->
                  let sol =
                    Milp.round_integral ~tol:options.Milp.int_tol node solution
                  in
                  try_publish objective sol
              | Some v ->
                  let first, second =
                    Milp.branch_children node v solution.(v)
                  in
                  (* Head of the list is the stack top: the preferred
                     branch goes on top, same dive order as the
                     sequential DFS. *)
                  stack := first :: second :: !stack;
                  if List.length !stack > max_local_stack then begin
                    let keep, spill = split_at max_local_stack !stack in
                    stack := keep;
                    (* [spill] is deepest-first (stack order); reverse
                       so earlier = shallower within this round, and
                       append so earlier rounds stay ahead — thieves
                       pop the front of the deque, so they always grab
                       the largest spilled subtree first. *)
                    spilled := !spilled @ List.rev spill
                  end))
      end
    done;
    (* The pool pushes children in list order to this worker's deque:
       thieves take the front (the spilled subtrees), this worker pops
       the back next — the reversed local stack puts its top last, so
       the dive resumes exactly where the batch budget cut it off.  On
       a truncating exit the re-enqueued nodes are dropped unprocessed
       by the pool's stop check, which is sound: every truncation path
       set its shared flag first, so the result is already classified
       as inconclusive. *)
    !spilled @ List.rev !stack
  in
  let pool_stats =
    Pool.run ~workers ~initial:[ model ] ~process ~stop
  in
  (* The pool contains task exceptions instead of letting them kill a
     domain, but for branch-and-bound a lost subtree voids the pruning
     proof: a search that dropped nodes must not report Infeasible or
     Optimal.  Re-raise here so the query-level retry ladder (or the
     campaign's crash isolation) decides what to do with the query. *)
  (match pool_stats.Pool.first_exn with Some e -> raise e | None -> ());
  (* Guide counters: the factory aggregates over every instance it
     made, so the workers' per-instance work is read as a single
     start/end delta after the pool joins (happens-before via
     [Pool.run]'s domain joins — no atomics in the hot path). *)
  let gd =
    match options.Milp.absint with
    | None -> Milp.empty_guide_stats
    | Some f -> Milp.sub_guide_stats (f.Milp.guide_stats ()) guide_stats_before
  in
  let pivots = ref 0 and warm = ref 0 and cold = ref 0 in
  let fallbacks = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some h ->
          let c = Simplex.counters h in
          pivots := !pivots + c.Simplex.pivots;
          warm := !warm + c.Simplex.warm_starts;
          cold := !cold + c.Simplex.cold_starts;
          fallbacks := !fallbacks + c.Simplex.fallbacks)
    handles;
  let stats =
    {
      Milp.nodes_explored = Atomic.get s.nodes;
      lp_solved = Atomic.get s.lps;
      incumbent_updates = Atomic.get s.updates;
      lp_time_s = Array.fold_left ( +. ) 0.0 lp_time;
      per_worker_nodes;
      steals = pool_stats.Pool.steals;
      max_queue_depth = pool_stats.Pool.max_queue_depth;
      pivots = !pivots;
      warm_starts = !warm;
      cold_starts = !cold;
      fallbacks = !fallbacks;
      absint_phase_fixes = Atomic.get s.absint_fixes;
      absint_prunes = Atomic.get s.absint_prunes;
      absint_incr_hits = gd.Milp.incr_hits;
      absint_layers_propagated = gd.Milp.layers_propagated;
      absint_layers_saved = gd.Milp.layers_saved;
      absint_cache_evictions = gd.Milp.cache_evictions;
    }
  in
  let result =
    match !(s.incumbent) with
    | Some (objective, solution) ->
        (* Same classification as the sequential solver: an incumbent is
           [Optimal] only when the search ran to exhaustion without any
           truncation — otherwise it is a witness, not a proof. *)
        let proven =
          (not options.Milp.find_first)
          && (not (Atomic.get s.hit_limit))
          && (not (Atomic.get s.hit_deadline))
          && (not (Atomic.get s.relaxation_unbounded))
          && not (Atomic.get s.unbounded_truncated)
        in
        if proven then Milp.Optimal { objective; solution }
        else Milp.Feasible { objective; solution }
    | None ->
        if Atomic.get s.relaxation_unbounded then Milp.Unbounded
        else if Atomic.get s.hit_deadline then Milp.Timeout
        else if Atomic.get s.hit_limit || Atomic.get s.unbounded_truncated then
          Milp.Node_limit
        else Milp.Infeasible
  in
  Milp.record_metrics stats;
  if trace_t0 <> 0 then
    Dpv_obs.Trace.complete
      ~args:
        [
          ("workers", string_of_int workers);
          ("nodes", string_of_int stats.Milp.nodes_explored);
          ("steals", string_of_int stats.Milp.steals);
        ]
      ~name:"milp.solve" trace_t0;
  (result, stats)

let solve_with_stats ?(options = Milp.default_options) model =
  if options.Milp.workers < 1 then
    invalid_arg "Milp_par.solve_with_stats: workers must be >= 1"
  else if options.Milp.workers = 1 then Milp.solve_with_stats ~options model
  else solve_parallel ~options model

let solve ?options model = fst (solve_with_stats ?options model)
