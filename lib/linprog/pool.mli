(** Work-stealing domain pool for tree-shaped search.

    A fixed crew of worker domains processes tasks from per-worker
    deques.  Each worker pushes and pops at the *back* of its own deque
    (LIFO, which keeps a depth-first search depth-first and cache-warm)
    and, when empty, steals from the *front* of a victim's deque (FIFO,
    which hands thieves the shallowest — largest — subtrees).

    The pool is built per solve and torn down when the task graph is
    exhausted or the caller's [stop] predicate fires, so worker domains
    never outlive a query.

    {b Exception safety.}  A raising task cannot wedge the pool or kill
    an unrelated domain: {!run} catches task exceptions, aborts the
    remaining work (the partial result is unreliable anyway for a tree
    search) and surfaces the first exception in {!stats}; {!map_list}
    instead isolates each item behind a [result], so one raising item
    does not abort its batch. *)

type stats = {
  per_worker_tasks : int array;  (** tasks processed, by worker index *)
  steals : int;                  (** successful cross-deque steals *)
  max_queue_depth : int;         (** deepest any single deque ever got *)
  exceptions : int;              (** tasks that raised instead of returning *)
  first_exn : exn option;        (** the first recorded task exception *)
}

val run :
  workers:int ->
  initial:'a list ->
  process:(int -> 'a -> 'a list) ->
  stop:(unit -> bool) ->
  stats
(** [run ~workers ~initial ~process ~stop] seeds worker 0 with
    [initial], then lets [workers] domains call [process worker_id task]
    until every task (and transitively every child task it returned) has
    been processed, or until [stop ()] becomes true — after which
    remaining tasks are abandoned.

    Children are pushed left-to-right, so the *last* element of the
    returned list is processed next by the same worker: callers encoding
    DFS should put the preferred branch last.

    A [process] call that raises does not propagate: the pool counts it,
    records the first such exception in [stats.first_exn], and aborts
    the remaining tasks exactly as if [stop] had fired.  Per-task
    bookkeeping stays consistent (the raising task is still counted as
    processed and the pending counter still reaches zero), so the
    worker deques cannot deadlock.  Callers for whom a lost subtree is
    unsound — branch-and-bound pruning proofs, for instance — must
    check [first_exn] and re-raise or degrade explicitly.

    [process] and [stop] run concurrently on several domains; they must
    synchronise any shared state themselves (atomics or mutexes).
    [workers = 1] degenerates to a plain sequential loop on the calling
    domain — no domain is spawned, so results are bit-for-bit those of a
    sequential implementation. *)

val map_list :
  workers:int ->
  ?stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) result option array
(** [map_list ~workers f items] runs [f] on every item as one
    coarse-grained pool task each and returns the results in item order.
    An item on which [f] raised yields [Some (Error exn)] at its slot
    while every other item still runs to completion — the reuse path for
    schedulers above the MILP (verification campaigns) wants per-query
    failure isolation, not batch abortion.  An entry is [None] only when
    [stop] fired before its item started — with the default [stop] every
    entry is [Some].  [f] runs concurrently on several domains and must
    not itself spawn domains per call beyond what the host machine can
    carry. *)
