(** Parallel branch-and-bound over a {!Pool} of worker domains.

    The search tree of {!Milp} is explored by
    [options.workers] domains sharing a work-stealing subproblem deque
    per worker and a single atomic incumbent bound: any worker that
    finds a better integer-feasible point publishes it, and every
    worker prunes against the best objective published so far.
    Exploration *order* differs from the sequential solver, but the
    answer does not: optimality and infeasibility proofs exhaust the
    same tree, so objective values and Infeasible/Timeout
    classifications agree (witness solutions may legitimately differ
    between equally-optimal points).

    Work units are {e subtrees}, not single nodes: each pool task dives
    depth-first for up to [options.task_batch] node LPs on a worker-local
    stack (spilling its shallowest open subtrees back to the pool for
    thieves, re-enqueueing the rest when the batch budget runs out), so
    pool overhead is paid once per batch and consecutive LPs reuse the
    worker's warm simplex basis and its refactorization scratch arena.
    [task_batch = 1] restores one-node tasks.

    With [options.workers = 1] this module defers to
    {!Milp.solve_with_stats} verbatim — same traversal, same witness,
    bit-for-bit — which is the deterministic mode tests pin down.

    Node budgets ([max_nodes]) and wall-clock deadlines
    ([time_limit_s]) are enforced globally across workers. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], floored at 1: leave one
    core for the rest of the process, never go below sequential. *)

val solve : ?options:Milp.options -> Lp.t -> Milp.result
val solve_with_stats : ?options:Milp.options -> Lp.t -> Milp.result * Milp.stats
