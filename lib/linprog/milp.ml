type result =
  | Optimal of { objective : float; solution : float array }
  | Feasible of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Node_limit
  | Timeout

type stats = {
  nodes_explored : int;
  lp_solved : int;
  incumbent_updates : int;
  lp_time_s : float;
  per_worker_nodes : int array;
  steals : int;
  max_queue_depth : int;
  pivots : int;
  warm_starts : int;
  cold_starts : int;
  fallbacks : int;
  absint_phase_fixes : int;
  absint_prunes : int;
  absint_incr_hits : int;
  absint_layers_propagated : int;
  absint_layers_saved : int;
  absint_cache_evictions : int;
}

let empty_stats =
  {
    nodes_explored = 0;
    lp_solved = 0;
    incumbent_updates = 0;
    lp_time_s = 0.0;
    per_worker_nodes = [||];
    steals = 0;
    max_queue_depth = 0;
    pivots = 0;
    warm_starts = 0;
    cold_starts = 0;
    fallbacks = 0;
    absint_phase_fixes = 0;
    absint_prunes = 0;
    absint_incr_hits = 0;
    absint_layers_propagated = 0;
    absint_layers_saved = 0;
    absint_cache_evictions = 0;
  }

let add_stats a b =
  {
    nodes_explored = a.nodes_explored + b.nodes_explored;
    lp_solved = a.lp_solved + b.lp_solved;
    incumbent_updates = a.incumbent_updates + b.incumbent_updates;
    lp_time_s = a.lp_time_s +. b.lp_time_s;
    per_worker_nodes = Array.append a.per_worker_nodes b.per_worker_nodes;
    steals = a.steals + b.steals;
    max_queue_depth = max a.max_queue_depth b.max_queue_depth;
    pivots = a.pivots + b.pivots;
    warm_starts = a.warm_starts + b.warm_starts;
    cold_starts = a.cold_starts + b.cold_starts;
    fallbacks = a.fallbacks + b.fallbacks;
    absint_phase_fixes = a.absint_phase_fixes + b.absint_phase_fixes;
    absint_prunes = a.absint_prunes + b.absint_prunes;
    absint_incr_hits = a.absint_incr_hits + b.absint_incr_hits;
    absint_layers_propagated =
      a.absint_layers_propagated + b.absint_layers_propagated;
    absint_layers_saved = a.absint_layers_saved + b.absint_layers_saved;
    absint_cache_evictions = a.absint_cache_evictions + b.absint_cache_evictions;
  }

type branch_rule = Most_fractional | Bound_width | Guide_order

(* What an abstract-interpretation guide learned about one node.  The
   solver stays ignorant of how the bounds were propagated: [prune]
   means the node's feasible region provably misses the query, [fix]
   lists binary variables whose phase is implied by the node's current
   bounds, and [widths] scores still-free binaries by the width of the
   pre-activation interval they control (for [Bound_width] branching). *)
type guidance = {
  prune : bool;
  fix : (Lp.var * float) list;
  widths : (Lp.var * float) list;
}

type guide = Lp.t -> guidance

(* What a stateful guide did across one solve: cache hits (consults
   that reused at least one cached layer state), layer transfers run
   and skipped, and layer states dropped for the memory budget.  All
   zero for stateless guides. *)
type guide_stats = {
  incr_hits : int;
  layers_propagated : int;
  layers_saved : int;
  cache_evictions : int;
}

let empty_guide_stats =
  {
    incr_hits = 0;
    layers_propagated = 0;
    layers_saved = 0;
    cache_evictions = 0;
  }

let sub_guide_stats a b =
  {
    incr_hits = a.incr_hits - b.incr_hits;
    layers_propagated = a.layers_propagated - b.layers_propagated;
    layers_saved = a.layers_saved - b.layers_saved;
    cache_evictions = a.cache_evictions - b.cache_evictions;
  }

(* Guides carry per-solver state (cached propagation prefixes), so the
   solver asks the factory for a fresh instance per search — one for
   the sequential DFS, one per worker in [Milp_par] — instead of
   sharing a closure across domains.  [guide_stats] aggregates over
   every instance the factory ever made; solvers read it as a
   start/end delta so factories may outlive a solve. *)
type guide_factory = {
  new_guide : unit -> guide;
  guide_stats : unit -> guide_stats;
}

(* Wrap a stateless per-node closure (tests, custom heuristics) as a
   factory: every "instance" is the same closure and the stats stay
   zero. *)
let stateless_guide g =
  { new_guide = (fun () -> g); guide_stats = (fun () -> empty_guide_stats) }

type options = {
  max_nodes : int;
  int_tol : float;
  find_first : bool;
  workers : int;
  task_batch : int;
  time_limit_s : float option;
  lp_dense : bool;
  absint : guide_factory option;
  branch_rule : branch_rule;
}

(* Global metrics, folded from the finished [stats] record at the end of
   each solve ({!record_metrics}, shared with [Milp_par]) rather than
   incremented per pivot: the campaign-level counter totals then equal
   the sum of the per-query stats exactly, and the search hot loop gains
   no atomic traffic.  The per-LP latency histogram reuses the two
   clock reads the [lp_time_s] accounting already makes. *)
module Metrics = Dpv_obs.Metrics

let m_solves = Metrics.counter "milp.solves"
let m_nodes = Metrics.counter "milp.nodes"
let m_lps = Metrics.counter "milp.lps"
let m_incumbents = Metrics.counter "milp.incumbent_updates"
let m_lp_time = Metrics.counter "milp.lp_time_ns"
let m_steals = Metrics.counter "milp.steals"
let m_queue_depth = Metrics.gauge "milp.max_queue_depth"
let m_pivots = Metrics.counter "simplex.pivots"
let m_warm = Metrics.counter "simplex.warm_starts"
let m_cold = Metrics.counter "simplex.cold_starts"
let m_fallbacks = Metrics.counter "simplex.fallbacks"
let m_absint_fixes = Metrics.counter "absint.phase_fixes"
let m_absint_prunes = Metrics.counter "absint.prunes"
let m_absint_hits = Metrics.counter "absint.incr_hits"
let m_absint_propagated = Metrics.counter "absint.layers_propagated"
let m_absint_saved = Metrics.counter "absint.layers_saved"
let m_absint_evictions = Metrics.counter "absint.cache_evictions"
let lp_solve_hist = Metrics.histogram "milp.lp_solve_ns"

let record_metrics (s : stats) =
  Metrics.incr m_solves 1;
  Metrics.incr m_nodes s.nodes_explored;
  Metrics.incr m_lps s.lp_solved;
  Metrics.incr m_incumbents s.incumbent_updates;
  Metrics.incr m_lp_time (int_of_float (s.lp_time_s *. 1e9));
  Metrics.incr m_steals s.steals;
  Metrics.set_max m_queue_depth s.max_queue_depth;
  Metrics.incr m_pivots s.pivots;
  Metrics.incr m_warm s.warm_starts;
  Metrics.incr m_cold s.cold_starts;
  Metrics.incr m_fallbacks s.fallbacks;
  Metrics.incr m_absint_fixes s.absint_phase_fixes;
  Metrics.incr m_absint_prunes s.absint_prunes;
  Metrics.incr m_absint_hits s.absint_incr_hits;
  Metrics.incr m_absint_propagated s.absint_layers_propagated;
  Metrics.incr m_absint_saved s.absint_layers_saved;
  Metrics.incr m_absint_evictions s.absint_cache_evictions

let observe_lp_s seconds =
  Metrics.observe lp_solve_hist (int_of_float (seconds *. 1e9))

let default_options =
  {
    max_nodes = 200_000;
    int_tol = 1e-6;
    find_first = false;
    workers = 1;
    task_batch = 32;
    time_limit_s = None;
    lp_dense = false;
    absint = None;
    branch_rule = Most_fractional;
  }

let is_integral ~tol x = Float.abs (x -. Float.round x) <= tol

(* Most fractional integer variable, if any.  Ties (within an epsilon
   well below any meaningful fractionality difference) go to the lowest
   variable index: [Lp.integer_vars] is ascending and a candidate must
   beat the best strictly, so parallel and sequential runs branch on the
   same variable and report stable witnesses. *)
let find_branch_var ~tol model solution =
  let best = ref None in
  List.iter
    (fun v ->
      let x = solution.(v) in
      if not (is_integral ~tol x) then begin
        let frac = Float.abs (x -. Float.round x) in
        match !best with
        | Some (_, f) when frac <= f +. 1e-12 -> ()
        | _ -> best := Some (v, frac)
      end)
    (Lp.integer_vars model);
  Option.map fst !best

(* Widest-interval fractional variable under [Bound_width]: among the
   fractional integer variables that the guide scored, take the one
   whose pre-activation interval is widest (ties go to the lowest index,
   like [find_branch_var], for run-to-run stability).  Falls back to
   most-fractional when the guide scored none of the candidates. *)
let find_branch_var_widest ~tol model solution widths =
  let best = ref None in
  List.iter
    (fun v ->
      let x = solution.(v) in
      if not (is_integral ~tol x) then
        match List.assoc_opt v widths with
        | None -> ()
        | Some w -> (
            match !best with
            | Some (_, bw) when w <= bw -> ()
            | _ -> best := Some (v, w)))
    (Lp.integer_vars model);
  match !best with
  | Some (v, _) -> Some v
  | None -> find_branch_var ~tol model solution

(* Deepest-scored fractional variable under [Guide_order]: the guide
   emits widths in network layer order (per layer, ascending neuron
   index), so the last fractional entry is the deepest crossing
   binary.  Branching deepest-first means consecutive DFS nodes differ
   only in the final layers, so the incremental guide's prefix cache
   rolls back as little as possible; shallow invalidations only happen
   at the (geometrically rarer) backtracks above a exhausted deep
   subtree.  Falls back to most-fractional when the guide scored no
   fractional candidate. *)
let find_branch_var_ordered ~tol model solution widths =
  let best = ref None in
  List.iter
    (fun (v, _) -> if not (is_integral ~tol solution.(v)) then best := Some v)
    widths;
  match !best with
  | Some v -> Some v
  | None -> find_branch_var ~tol model solution

let round_integral ~tol model solution =
  let out = Array.copy solution in
  List.iter
    (fun v -> if is_integral ~tol out.(v) then out.(v) <- Float.round out.(v))
    (Lp.integer_vars model);
  out

(* Child order for DFS: explore the branch nearer the fractional value
   first — it finds integer-feasible points faster in practice. *)
let branch_children node v x =
  let lo, up = Lp.var_bounds node v in
  let floor_v = Float.floor x and ceil_v = Float.ceil x in
  let down = Lp.set_var_bounds node v ~lo ~up:(Some floor_v) in
  let up_node = Lp.set_var_bounds node v ~lo:(Some ceil_v) ~up in
  if x -. floor_v <= ceil_v -. x then (down, up_node) else (up_node, down)

let solve_with_stats ?(options = default_options) model =
  let trace_t0 = Dpv_obs.Trace.begin_ns () in
  let sense, _ = Lp.objective model in
  (* Internally we always minimize; [better a b] says [a] improves on [b]. *)
  let better a b =
    match sense with Lp.Minimize -> a < b -. 1e-12 | Lp.Maximize -> a > b +. 1e-12
  in
  let deadline = Clock.deadline_after options.time_limit_s in
  let nodes = ref 0 and lps = ref 0 and updates = ref 0 in
  let lp_time = ref 0.0 in
  let incumbent = ref None in
  let hit_limit = ref false in
  let hit_deadline = ref false in
  let relaxation_unbounded = ref false in
  let unbounded_truncated = ref false in
  let absint_fixes = ref 0 and absint_prunes = ref 0 in
  let max_depth = ref 0 in
  (* Instantiate the guide for this search; guide counters are read as
     a delta so a factory reused across solves still reports exactly
     this solve's work. *)
  let guide_stats_before =
    match options.absint with
    | None -> empty_guide_stats
    | Some f -> f.guide_stats ()
  in
  let guide =
    match options.absint with None -> None | Some f -> Some (f.new_guide ())
  in
  (* One persistent solver for the whole tree: nodes differ from each
     other only in integer-variable bounds, so syncing those bounds and
     re-solving warm-starts dual simplex from the previous optimal
     basis instead of rebuilding a tableau per node. *)
  let handle = Simplex.create model in
  let int_vars = Lp.integer_vars model in
  (* [lp_dense] is the last rung of the retry ladder: every node LP is
     solved with the dense reference implementation, trading speed for
     a path with no incremental basis state to corrupt. *)
  let solve_node node =
    if options.lp_dense then Simplex.solve_dense node
    else begin
      List.iter
        (fun v ->
          let lo, up = Lp.var_bounds node v in
          Simplex.set_var_bounds handle v ~lo ~up)
        int_vars;
      Simplex.resolve handle
    end
  in
  (* DFS over persistent models; bound tightening produces child nodes.
     [depth] tracks the stack length incrementally (a branch pops one
     node and pushes two, everything else pops one) so the high-water
     mark costs O(1) per node instead of an O(depth) [List.length] —
     and, like the parallel solver's per-deque high-water mark, it
     counts the seeded root as depth 1. *)
  let rec explore stack depth =
    match stack with
    | [] -> ()
    | node :: rest ->
        if !nodes >= options.max_nodes then hit_limit := true
        else if Clock.expired deadline then hit_deadline := true
        else if
          (* Early exit once an incumbent exists in find_first mode. *)
          options.find_first && !incumbent <> None
        then ()
        else begin
          let is_root = node == model in
          (* The abstract-interpretation guide, when armed, runs before
             the LP: a pruned node costs no simplex work at all, and
             phase fixes shrink the subtree the relaxation must cover. *)
          let guidance =
            match guide with None -> None | Some g -> Some (g node)
          in
          match guidance with
          | Some g when g.prune ->
              incr absint_prunes;
              explore rest (depth - 1)
          | _ -> (
              let node =
                match guidance with
                | Some { fix = (_ :: _) as fix; _ } ->
                    absint_fixes := !absint_fixes + List.length fix;
                    List.fold_left
                      (fun m (v, x) ->
                        Lp.set_var_bounds m v ~lo:(Some x) ~up:(Some x))
                      node fix
                | _ -> node
              in
              incr nodes;
              incr lps;
              let lp_started = Clock.now_s () in
              let status = solve_node node in
              let status =
                if Faults.fire Faults.Lp_unbounded then Simplex.Unbounded
                else status
              in
              let lp_s = Clock.now_s () -. lp_started in
              lp_time := !lp_time +. lp_s;
              observe_lp_s lp_s;
              match status with
              | Simplex.Infeasible -> explore rest (depth - 1)
              | Simplex.Unbounded ->
                  if is_root then
                    (* At the root this is an honest report: without a
                       finite relaxation bound the MILP itself may be
                       unbounded. *)
                    relaxation_unbounded := true
                  else begin
                    (* A child's feasible set is contained in the root's,
                       so below a bounded root an unbounded relaxation is
                       a numerical artifact, not a proof.  Drop the
                       subtree, keep exploring siblings; the truncation
                       downgrades any optimality claim below. *)
                    unbounded_truncated := true;
                    explore rest (depth - 1)
                  end
              | Simplex.Optimal { objective; solution } ->
                  let prune =
                    match !incumbent with
                    | Some (obj, _) -> not (better objective obj)
                    | None -> false
                  in
                  if prune then explore rest (depth - 1)
                  else begin
                    let branch_var =
                      match (options.branch_rule, guidance) with
                      | Bound_width, Some { widths = _ :: _ as widths; _ } ->
                          find_branch_var_widest ~tol:options.int_tol node
                            solution widths
                      | Guide_order, Some { widths = _ :: _ as widths; _ } ->
                          find_branch_var_ordered ~tol:options.int_tol node
                            solution widths
                      | _ -> find_branch_var ~tol:options.int_tol node solution
                    in
                    match branch_var with
                    | None ->
                        let sol =
                          round_integral ~tol:options.int_tol node solution
                        in
                        (match !incumbent with
                        | Some (obj, _) when not (better objective obj) -> ()
                        | _ ->
                            incumbent := Some (objective, sol);
                            incr updates);
                        explore rest (depth - 1)
                    | Some v ->
                        let first, second = branch_children node v solution.(v) in
                        let depth' = depth + 1 in
                        if depth' > !max_depth then max_depth := depth';
                        explore (first :: second :: rest) depth'
                  end)
        end
  in
  max_depth := 1;
  explore [ model ] 1;
  let c = Simplex.counters handle in
  let gd =
    match options.absint with
    | None -> empty_guide_stats
    | Some f -> sub_guide_stats (f.guide_stats ()) guide_stats_before
  in
  let stats =
    {
      nodes_explored = !nodes;
      lp_solved = !lps;
      incumbent_updates = !updates;
      lp_time_s = !lp_time;
      per_worker_nodes = [| !nodes |];
      steals = 0;
      max_queue_depth = !max_depth;
      pivots = c.Simplex.pivots;
      warm_starts = c.Simplex.warm_starts;
      cold_starts = c.Simplex.cold_starts;
      fallbacks = c.Simplex.fallbacks;
      absint_phase_fixes = !absint_fixes;
      absint_prunes = !absint_prunes;
      absint_incr_hits = gd.incr_hits;
      absint_layers_propagated = gd.layers_propagated;
      absint_layers_saved = gd.layers_saved;
      absint_cache_evictions = gd.cache_evictions;
    }
  in
  let result =
    match !incumbent with
    | Some (objective, solution) ->
        (* [Optimal] is an optimality *proof*: the whole tree was pruned
           or exhausted.  Any truncation — node cap, deadline, find_first
           early exit, or an unbounded relaxation somewhere — leaves the
           incumbent a witness only. *)
        let proven =
          (not options.find_first)
          && (not !hit_limit)
          && (not !hit_deadline)
          && (not !relaxation_unbounded)
          && not !unbounded_truncated
        in
        if proven then Optimal { objective; solution }
        else Feasible { objective; solution }
    | None ->
        if !relaxation_unbounded then Unbounded
        else if !hit_deadline then Timeout
        else if !hit_limit || !unbounded_truncated then Node_limit
        else Infeasible
  in
  record_metrics stats;
  if trace_t0 <> 0 then
    Dpv_obs.Trace.complete
      ~args:
        [
          ("nodes", string_of_int stats.nodes_explored);
          ("lps", string_of_int stats.lp_solved);
          ("pivots", string_of_int stats.pivots);
        ]
      ~name:"milp.solve" trace_t0;
  (result, stats)

let solve ?options model = fst (solve_with_stats ?options model)
