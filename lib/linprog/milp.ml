type result =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
  | Node_limit

type stats = {
  nodes_explored : int;
  lp_solved : int;
  incumbent_updates : int;
}

type options = { max_nodes : int; int_tol : float; find_first : bool }

let default_options = { max_nodes = 200_000; int_tol = 1e-6; find_first = false }

let is_integral ~tol x = Float.abs (x -. Float.round x) <= tol

(* Most fractional integer variable, if any. *)
let find_branch_var ~tol model solution =
  let best = ref None in
  List.iter
    (fun v ->
      let x = solution.(v) in
      if not (is_integral ~tol x) then begin
        let frac = Float.abs (x -. Float.round x) in
        match !best with
        | Some (_, f) when f >= frac -> ()
        | _ -> best := Some (v, frac)
      end)
    (Lp.integer_vars model);
  Option.map fst !best

let round_integral ~tol model solution =
  let out = Array.copy solution in
  List.iter
    (fun v -> if is_integral ~tol out.(v) then out.(v) <- Float.round out.(v))
    (Lp.integer_vars model);
  out

let solve_with_stats ?(options = default_options) model =
  let sense, _ = Lp.objective model in
  (* Internally we always minimize; [better a b] says [a] improves on [b]. *)
  let better a b =
    match sense with Lp.Minimize -> a < b -. 1e-12 | Lp.Maximize -> a > b +. 1e-12
  in
  let nodes = ref 0 and lps = ref 0 and updates = ref 0 in
  let incumbent = ref None in
  let hit_limit = ref false in
  let relaxation_unbounded = ref false in
  (* DFS over persistent models; bound tightening produces child nodes. *)
  let rec explore stack =
    match stack with
    | [] -> ()
    | node :: rest ->
        if !nodes >= options.max_nodes then hit_limit := true
        else if
          (* Early exit once an incumbent exists in find_first mode. *)
          options.find_first && !incumbent <> None
        then ()
        else begin
          incr nodes;
          incr lps;
          match Simplex.solve node with
          | Simplex.Infeasible -> explore rest
          | Simplex.Unbounded ->
              (* Without a finite relaxation bound we cannot prune; report. *)
              relaxation_unbounded := true
          | Simplex.Optimal { objective; solution } ->
              let prune =
                match !incumbent with
                | Some (obj, _) -> not (better objective obj)
                | None -> false
              in
              if prune then explore rest
              else begin
                match find_branch_var ~tol:options.int_tol node solution with
                | None ->
                    let sol = round_integral ~tol:options.int_tol node solution in
                    (match !incumbent with
                    | Some (obj, _) when not (better objective obj) -> ()
                    | _ ->
                        incumbent := Some (objective, sol);
                        incr updates);
                    explore rest
                | Some v ->
                    let x = solution.(v) in
                    let lo, up = Lp.var_bounds node v in
                    let floor_v = Float.floor x and ceil_v = Float.ceil x in
                    let down =
                      Lp.set_var_bounds node v ~lo ~up:(Some floor_v)
                    in
                    let up_node =
                      Lp.set_var_bounds node v ~lo:(Some ceil_v) ~up
                    in
                    (* Explore the branch nearer the fractional value first:
                       finds integer-feasible points faster in practice. *)
                    let first, second =
                      if x -. floor_v <= ceil_v -. x then (down, up_node)
                      else (up_node, down)
                    in
                    explore (first :: second :: rest)
              end
        end
  in
  explore [ model ];
  let stats =
    { nodes_explored = !nodes; lp_solved = !lps; incumbent_updates = !updates }
  in
  let result =
    if !relaxation_unbounded && !incumbent = None then Unbounded
    else
      match !incumbent with
      | Some (objective, solution) -> Optimal { objective; solution }
      | None -> if !hit_limit then Node_limit else Infeasible
  in
  (result, stats)

let solve ?options model = fst (solve_with_stats ?options model)
