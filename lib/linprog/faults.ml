type site =
  | Lp_trouble
  | Pivot_corrupt
  | Refactor_singular
  | Deadline_jitter
  | Task_crash
  | Journal_crash
  | Lp_unbounded
  | Absint_stale
  | Serve_accept
  | Serve_torn_frame
  | Serve_client_gone
  | Serve_scrape

let all_sites =
  [
    ("lp-trouble", Lp_trouble);
    ("pivot-corrupt", Pivot_corrupt);
    ("refactor-singular", Refactor_singular);
    ("deadline-jitter", Deadline_jitter);
    ("task-crash", Task_crash);
    ("journal-crash", Journal_crash);
    ("lp-unbounded", Lp_unbounded);
    ("absint-stale", Absint_stale);
    ("serve-accept", Serve_accept);
    ("serve-torn-frame", Serve_torn_frame);
    ("serve-client-gone", Serve_client_gone);
    ("serve-scrape", Serve_scrape);
  ]

let site_index = function
  | Lp_trouble -> 0
  | Pivot_corrupt -> 1
  | Refactor_singular -> 2
  | Deadline_jitter -> 3
  | Task_crash -> 4
  | Journal_crash -> 5
  | Lp_unbounded -> 6
  | Absint_stale -> 7
  | Serve_accept -> 8
  | Serve_torn_frame -> 9
  | Serve_client_gone -> 10
  | Serve_scrape -> 11

let n_sites = 12

let site_name s = fst (List.nth all_sites (site_index s))

(* Armed state.  [targets.(i) = 0] means site [i] never fires.  The
   enabled flag is the only thing the disabled fast path reads. *)
let armed = Atomic.make false
let the_seed = Atomic.make 0
let targets = Array.make n_sites 0
let counts = Array.init n_sites (fun _ -> Atomic.make 0)
let fired_counts = Array.init n_sites (fun _ -> Atomic.make 0)

let reset_counters () =
  Array.iter (fun c -> Atomic.set c 0) counts;
  Array.iter (fun c -> Atomic.set c 0) fired_counts

let disable () =
  Atomic.set armed false;
  Atomic.set the_seed 0;
  Array.fill targets 0 n_sites 0;
  reset_counters ()

let configure ?(seed = 0) plan =
  Atomic.set armed false;
  Array.fill targets 0 n_sites 0;
  List.iter
    (fun (s, n) ->
      if n < 1 then invalid_arg "Faults.configure: occurrence must be >= 1";
      targets.(site_index s) <- n)
    plan;
  Atomic.set the_seed seed;
  reset_counters ();
  if plan <> [] then Atomic.set armed true

let enabled () = Atomic.get armed

let seed () = Atomic.get the_seed

let fire site =
  if not (Atomic.get armed) then false
  else begin
    let i = site_index site in
    let occurrence = 1 + Atomic.fetch_and_add counts.(i) 1 in
    let hit = targets.(i) > 0 && occurrence = targets.(i) in
    if hit then begin
      Atomic.incr fired_counts.(i);
      (* A chaos run with tracing on shows each injection as a marker at
         the instant it fired, on the worker that drew it. *)
      Dpv_obs.Trace.instant
        ~args:[ ("occurrence", string_of_int occurrence) ]
        ("fault-fire:" ^ site_name site)
    end;
    hit
  end

let occurrences site = Atomic.get counts.(site_index site)
let fired site = Atomic.get fired_counts.(site_index site)

(* One summary marker per site, fired or not, so a trace is
   self-describing about which injection sites the run passed through.
   Executables call this right before writing the trace. *)
let trace_sites () =
  List.iter
    (fun (name, site) ->
      Dpv_obs.Trace.instant
        ~args:
          [
            ("occurrences", string_of_int (occurrences site));
            ("fired", string_of_int (fired site));
            ( "target",
              string_of_int
                (if Atomic.get armed then targets.(site_index site) else 0) );
          ]
        ("fault-site:" ^ name))
    all_sites

let parse_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed plan = function
    | [] -> Ok (seed, List.rev plan)
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "fault spec %S is not key=value" part)
        | Some eq -> (
            let key = String.trim (String.sub part 0 eq) in
            let value =
              String.trim
                (String.sub part (eq + 1) (String.length part - eq - 1))
            in
            match int_of_string_opt value with
            | None ->
                Error (Printf.sprintf "fault spec %S: %S is not an integer" part value)
            | Some n ->
                if key = "seed" then go n plan rest
                else (
                  match List.assoc_opt key all_sites with
                  | None ->
                      Error
                        (Printf.sprintf
                           "unknown fault site %S (known: seed, %s)" key
                           (String.concat ", " (List.map fst all_sites)))
                  | Some site ->
                      if n < 1 then
                        Error
                          (Printf.sprintf "fault site %S: occurrence must be >= 1" key)
                      else go seed ((site, n) :: plan) rest)))
  in
  go 0 [] parts

let init_from_env () =
  match Sys.getenv_opt "DPV_FAULTS" with
  | None -> ()
  | Some spec when String.trim spec = "" -> ()
  | Some spec -> (
      match parse_spec spec with
      | Ok (seed, plan) -> configure ~seed plan
      | Error msg ->
          Printf.eprintf "DPV_FAULTS: %s\n%!" msg;
          exit 3)

let describe () =
  if not (Atomic.get armed) then "disabled"
  else begin
    let parts =
      List.filter_map
        (fun (name, site) ->
          let t = targets.(site_index site) in
          if t = 0 then None else Some (Printf.sprintf "%s=%d" name t))
        all_sites
    in
    Printf.sprintf "seed=%d,%s" (Atomic.get the_seed) (String.concat "," parts)
  end
