type var = int
type kind = Continuous | Integer | Binary
type relation = Le | Ge | Eq
type term = float * var
type objective_sense = Minimize | Maximize

type var_info = {
  name : string;
  lo : float option;
  up : float option;
  kind : kind;
}

type constr = { cname : string; terms : term list; rel : relation; rhs : float }

module Imap = Map.Make (Int)

type t = {
  nvars : int;
  vars : var_info Imap.t;
  (* Constraints kept in reverse insertion order. *)
  constrs : constr list;
  nconstrs : int;
  sense : objective_sense;
  obj : term list;
  (* Bound-change history, most recent first: one entry per
     [set_var_bounds] call since [create].  A child model built from a
     parent shares the parent's tail physically, so two models derived
     from a common ancestor can be diffed in time proportional to their
     distance in the derivation tree — see [bounds_delta]. *)
  trail : var list;
  trail_len : int;
}

let create () =
  {
    nvars = 0;
    vars = Imap.empty;
    constrs = [];
    nconstrs = 0;
    sense = Minimize;
    obj = [];
    trail = [];
    trail_len = 0;
  }

let add_var ?name ?lo ?up ?(kind = Continuous) m =
  let v = m.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" v in
  let lo, up =
    match kind with
    | Binary ->
        let lo' = match lo with Some l -> Float.max l 0.0 | None -> 0.0 in
        let up' = match up with Some u -> Float.min u 1.0 | None -> 1.0 in
        (Some lo', Some up')
    | Continuous | Integer -> (lo, up)
  in
  let info = { name; lo; up; kind } in
  ({ m with nvars = v + 1; vars = Imap.add v info m.vars }, v)

(* Merge duplicate variables inside a term list. *)
let normalize_terms terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (cur +. c))
    terms;
  Hashtbl.fold (fun v c acc -> (c, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let add_constraint ?name m terms rel rhs =
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" m.nconstrs
  in
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Lp.add_constraint: bad var")
    terms;
  let c = { cname; terms = normalize_terms terms; rel; rhs } in
  { m with constrs = c :: m.constrs; nconstrs = m.nconstrs + 1 }

let set_objective m sense obj =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= m.nvars then invalid_arg "Lp.set_objective: bad var")
    obj;
  { m with sense; obj = normalize_terms obj }

let num_vars m = m.nvars
let num_constraints m = m.nconstrs

let find_var m v =
  match Imap.find_opt v m.vars with
  | Some info -> info
  | None -> invalid_arg "Lp: unknown variable"

let var_name m v = (find_var m v).name
let var_bounds m v =
  let i = find_var m v in
  (i.lo, i.up)

let var_kind m v = (find_var m v).kind

let integer_vars m =
  Imap.fold
    (fun v info acc ->
      match info.kind with
      | Integer | Binary -> v :: acc
      | Continuous -> acc)
    m.vars []
  |> List.rev

let set_var_bounds m v ~lo ~up =
  let info = find_var m v in
  {
    m with
    vars = Imap.add v { info with lo; up } m.vars;
    trail = v :: m.trail;
    trail_len = m.trail_len + 1;
  }

let bounds_delta ?cap a b =
  let cap = match cap with Some c -> c | None -> max_int in
  (* Walk both trails back to their longest physically-shared suffix:
     every entry dropped on either side names a variable whose bounds
     may differ between [a] and [b]; all other variables provably have
     identical bounds (their infos were inherited untouched from the
     common ancestor).  [None] when the models share no recent history
     within [cap] steps — the caller should fall back to a full scan. *)
  let rec strip n t count acc =
    if count > cap then None
    else if n = 0 then Some (t, count, acc)
    else
      match t with
      | [] -> Some ([], count, acc)
      | v :: rest -> strip (n - 1) rest (count + 1) (v :: acc)
  in
  let rec walk ta tb count acc =
    if count > cap then None
    else if ta == tb then Some acc
    else
      match (ta, tb) with
      | va :: ra, vb :: rb -> walk ra rb (count + 2) (va :: vb :: acc)
      | [], [] -> Some acc
      | _ -> None
  in
  if a.trail_len >= b.trail_len then
    match strip (a.trail_len - b.trail_len) a.trail 0 [] with
    | None -> None
    | Some (ta, count, acc) -> walk ta b.trail count acc
  else
    match strip (b.trail_len - a.trail_len) b.trail 0 [] with
    | None -> None
    | Some (tb, count, acc) -> walk a.trail tb count acc

let relax_integrality m =
  {
    m with
    vars = Imap.map (fun info -> { info with kind = Continuous }) m.vars;
  }

let constraints m =
  List.rev_map (fun c -> (c.cname, c.terms, c.rel, c.rhs)) m.constrs

let objective m = (m.sense, m.obj)

let eval_term_list terms x =
  List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0.0 terms

let check_feasible ?(tol = 1e-6) m x =
  if Array.length x <> m.nvars then false
  else
    let bounds_ok =
      Imap.for_all
        (fun v info ->
          (match info.lo with None -> true | Some l -> x.(v) >= l -. tol)
          && match info.up with None -> true | Some u -> x.(v) <= u +. tol)
        m.vars
    in
    bounds_ok
    && List.for_all
         (fun c ->
           let lhs = eval_term_list c.terms x in
           match c.rel with
           | Le -> lhs <= c.rhs +. tol
           | Ge -> lhs >= c.rhs -. tol
           | Eq -> Float.abs (lhs -. c.rhs) <= tol)
         m.constrs

let pp_rel fmt = function
  | Le -> Format.fprintf fmt "<="
  | Ge -> Format.fprintf fmt ">="
  | Eq -> Format.fprintf fmt "="

let pp fmt m =
  let pp_terms fmt terms =
    match terms with
    | [] -> Format.fprintf fmt "0"
    | _ ->
        List.iteri
          (fun i (c, v) ->
            if i > 0 then Format.fprintf fmt " + ";
            Format.fprintf fmt "%g*%s" c (var_name m v))
          terms
  in
  let sense = match m.sense with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf fmt "@[<v>%s %a@," sense pp_terms m.obj;
  List.iter
    (fun (name, terms, rel, rhs) ->
      Format.fprintf fmt "%s: %a %a %g@," name pp_terms terms pp_rel rel rhs)
    (constraints m);
  Imap.iter
    (fun _ info ->
      let l = match info.lo with None -> "-inf" | Some x -> string_of_float x in
      let u = match info.up with None -> "+inf" | Some x -> string_of_float x in
      let k =
        match info.kind with
        | Continuous -> ""
        | Integer -> " int"
        | Binary -> " bin"
      in
      Format.fprintf fmt "%s in [%s, %s]%s@," info.name l u k)
    m.vars;
  Format.fprintf fmt "@]"
