type stats = {
  per_worker_tasks : int array;
  steals : int;
  max_queue_depth : int;
  exceptions : int;
  first_exn : exn option;
}

module Metrics = Dpv_obs.Metrics
module Trace = Dpv_obs.Trace

(* Pool-level metrics, distinct from the milp.* counters: this pool
   also carries campaign query tasks, so "pool.steals" counts stealing
   at every layer while "milp.steals" counts only tree-search steals. *)
let m_tasks = Metrics.counter "pool.tasks"
let m_steals = Metrics.counter "pool.steals"
let m_exceptions = Metrics.counter "pool.exceptions"
let m_queue_depth = Metrics.gauge "pool.max_queue_depth"

(* Growable ring-buffer deque, one lock each.  The owner works the back,
   thieves take the front; contention is a single uncontended lock in
   the common case, which is cheap next to the LP solve each task does. *)
type 'a deque = {
  mutable buf : 'a option array;
  mutable front : int;          (* index of the first element *)
  mutable len : int;
  mutable high_water : int;     (* deepest this deque ever got *)
  lock : Mutex.t;
}

let make_deque () =
  { buf = Array.make 64 None; front = 0; len = 0; high_water = 0;
    lock = Mutex.create () }

let grow d =
  let cap = Array.length d.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to d.len - 1 do
    buf.(i) <- d.buf.((d.front + i) mod cap)
  done;
  d.buf <- buf;
  d.front <- 0

let with_lock d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let push_back d x =
  with_lock d (fun () ->
      if d.len = Array.length d.buf then grow d;
      d.buf.((d.front + d.len) mod Array.length d.buf) <- Some x;
      d.len <- d.len + 1;
      if d.len > d.high_water then d.high_water <- d.len)

let pop_back d =
  with_lock d (fun () ->
      if d.len = 0 then None
      else begin
        let i = (d.front + d.len - 1) mod Array.length d.buf in
        let x = d.buf.(i) in
        d.buf.(i) <- None;
        d.len <- d.len - 1;
        x
      end)

let pop_front d =
  with_lock d (fun () ->
      if d.len = 0 then None
      else begin
        let x = d.buf.(d.front) in
        d.buf.(d.front) <- None;
        d.front <- (d.front + 1) mod Array.length d.buf;
        d.len <- d.len - 1;
        x
      end)

let run ~workers ~initial ~process ~stop =
  if workers < 1 then invalid_arg "Pool.run: workers must be >= 1";
  let deques = Array.init workers (fun _ -> make_deque ()) in
  (* Tasks queued or currently being processed; 0 means the whole tree
     is done.  A task stays counted until after its children are pushed,
     so the counter can never dip to 0 with work still hidden inside a
     running [process]. *)
  let pending = Atomic.make 0 in
  let steals = Atomic.make 0 in
  let tasks_done = Array.make workers 0 in
  (* A raising task must not wedge the pool: the exception is recorded
     here (first one wins the CAS), the pool aborts like a [stop], and
     the caller reads it from the returned stats instead of catching a
     propagated exception from whichever domain happened to host the
     task. *)
  let exn_count = Atomic.make 0 in
  let first_exn : exn option Atomic.t = Atomic.make None in
  let aborted = Atomic.make false in
  List.iter
    (fun task ->
      Atomic.incr pending;
      push_back deques.(0) task)
    initial;
  let record_exn e =
    Atomic.incr exn_count;
    let (_ : bool) = Atomic.compare_and_set first_exn None (Some e) in
    Atomic.set aborted true
  in
  let execute id task =
    (* [pending] is decremented on EVERY exit path, raising included —
       otherwise the other workers would spin forever on a counter that
       can no longer reach zero. *)
    (match try Ok (process id task) with e -> Error e with
    | Ok children ->
        List.iter
          (fun child ->
            Atomic.incr pending;
            push_back deques.(id) child)
          children
    | Error e -> record_exn e);
    tasks_done.(id) <- tasks_done.(id) + 1;
    Atomic.decr pending
  in
  let steal id =
    let n = workers in
    let rec scan k =
      if k >= n then None
      else
        match pop_front deques.((id + k) mod n) with
        | Some _ as hit ->
            Atomic.incr steals;
            hit
        | None -> scan (k + 1)
    in
    scan 1
  in
  let rec worker_loop id =
    if Atomic.get pending = 0 || Atomic.get aborted || stop () then ()
    else begin
      (match pop_back deques.(id) with
      | Some task -> execute id task
      | None -> (
          match steal id with
          | Some task -> execute id task
          | None -> Domain.cpu_relax ()));
      worker_loop id
    end
  in
  (* Belt and braces: [execute] already contains every exception, but a
     failure in the loop machinery itself must still not leak through
     [Domain.join] and bypass the surfacing contract. *)
  let guarded_loop id =
    (* Label this domain's trace track and record its working lifetime
       as one span, so a trace shows worker occupancy at a glance. *)
    if Trace.enabled () then begin
      Trace.name_thread (Printf.sprintf "worker-%d" id);
      Trace.with_span
        ~args:[ ("worker", string_of_int id) ]
        "pool.worker"
        (fun () -> try worker_loop id with e -> record_exn e)
    end
    else try worker_loop id with e -> record_exn e
  in
  if workers = 1 then guarded_loop 0
  else begin
    let domains =
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () -> guarded_loop (i + 1)))
    in
    guarded_loop 0;
    Array.iter Domain.join domains
  end;
  let max_queue_depth =
    Array.fold_left (fun acc d -> Stdlib.max acc d.high_water) 0 deques
  in
  Metrics.incr m_tasks (Array.fold_left ( + ) 0 tasks_done);
  Metrics.incr m_steals (Atomic.get steals);
  Metrics.incr m_exceptions (Atomic.get exn_count);
  Metrics.set_max m_queue_depth max_queue_depth;
  {
    per_worker_tasks = tasks_done;
    steals = Atomic.get steals;
    max_queue_depth;
    exceptions = Atomic.get exn_count;
    first_exn = Atomic.get first_exn;
  }

(* Coarse-grained fan-out over a fixed item list: each item is one leaf
   task (no children), results land at the item's index.  Distinct
   indices are written from distinct domains, which is safe; the join in
   [run] publishes them to the caller.  [f] is wrapped per item, so one
   raising item records an [Error] at its own slot and the rest of the
   batch keeps running — the abort-on-exception path in [run] never
   sees item exceptions. *)
let map_list ~workers ?(stop = fun () -> false) f items =
  let n = List.length items in
  let out = Array.make n None in
  let tasks = List.mapi (fun i x -> (i, x)) items in
  let process _id (i, x) =
    out.(i) <- Some (try Ok (f x) with e -> Error e);
    []
  in
  let (_ : stats) = run ~workers ~initial:tasks ~process ~stop in
  out
