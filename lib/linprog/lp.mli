(** Linear / mixed-integer program model builder.

    A model is a bag of variables (with optional bounds and an integrality
    kind), linear constraints, and a linear objective.  The structure is
    persistent: every operation returns a new model, which lets
    branch-and-bound branch by tightening bounds without undo logic.
    It is solver-agnostic; {!Simplex} consumes pure LPs and {!Milp}
    handles integrality. *)

type var = int
(** Variable index, valid for the model family that created it. *)

type kind = Continuous | Integer | Binary

type relation = Le | Ge | Eq

type term = float * var
(** Coefficient-variable pair. *)

type objective_sense = Minimize | Maximize

type t

val create : unit -> t

val add_var : ?name:string -> ?lo:float -> ?up:float -> ?kind:kind -> t -> t * var
(** Fresh variable.  Missing [lo]/[up] mean unbounded on that side.
    [Binary] intersects the given bounds with [0,1]. *)

val add_constraint : ?name:string -> t -> term list -> relation -> float -> t
(** [add_constraint m terms rel rhs] posts [sum terms REL rhs].  Repeated
    variables inside [terms] are accumulated. *)

val set_objective : t -> objective_sense -> term list -> t

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string
val var_bounds : t -> var -> float option * float option
val var_kind : t -> var -> kind
val integer_vars : t -> var list
(** Variables of kind [Integer] or [Binary], ascending. *)

val set_var_bounds : t -> var -> lo:float option -> up:float option -> t

val bounds_delta : ?cap:int -> t -> t -> var list option
(** [bounds_delta a b] lists every variable whose bounds {e may} differ
    between two models derived from a common ancestor by
    [set_var_bounds]; any variable not listed provably has identical
    bounds in both.  Both models must belong to the same derivation
    family (the same [create] call) — the diff walks the bound-change
    history and cannot tell unrelated families apart.  Cost is
    proportional to the models' distance in the derivation tree (each
    [set_var_bounds] leaves a physically shared history entry), not to
    model size — this is what lets an incremental branch-and-bound
    guide diff consecutive tree nodes in O(1) instead of re-reading
    every binary.  The list may repeat variables.  [None] when more
    than [cap] history entries (default: unlimited) separate the
    models — callers fall back to a full scan. *)

val relax_integrality : t -> t
(** Every [Integer]/[Binary] variable becomes [Continuous] (bounds kept):
    the LP relaxation used by bound tightening. *)

val constraints : t -> (string * term list * relation * float) list
(** In insertion order. *)

val objective : t -> objective_sense * term list

val eval_term_list : term list -> float array -> float

val check_feasible : ?tol:float -> t -> float array -> bool
(** True when the point satisfies every constraint and bound (ignoring
    integrality) within absolute tolerance [tol] (default [1e-6]). *)

val pp : Format.formatter -> t -> unit
