(** LP solvers.

    The primary engine is a revised simplex over sparse columns with
    native [lo, up] variable bounds: rows become equalities with one
    bounded slack each (no standard-form variable splitting, no Phase-1
    artificials), and the ratio test handles bound flips directly.  A
    persistent {!handle} keeps the factorized basis alive between
    solves, so re-solving after a bound change runs dual simplex from
    the previous optimal basis (typically a handful of pivots) and
    re-solving after an objective change runs primal simplex from the
    still-primal-feasible basis.  Branch-and-bound and OBBT are exactly
    these two workloads.

    A dense two-phase tableau implementation is retained as
    {!solve_dense}: it is the differential-testing oracle and the
    automatic fallback when the revised engine detects numerical
    trouble (singular refactorization, vanishing pivots, iteration
    blow-up).

    Accepts any {!Lp.t}; integrality kinds are ignored (the LP
    relaxation is solved).  Solutions are reported in the original
    variable space.

    Termination: Dantzig pricing with an automatic switch to Bland's
    rule after a streak of degenerate pivots, which rules out cycling. *)

type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

exception Numerical_trouble of string
(** Numerical distress in the revised engine: singular refactorization,
    vanishing pivots, iteration blow-up, or a failed post-solve residual
    check.  Most occurrences are rescued internally (the handle resets
    its basis and re-solves with {!solve_dense}); one that still escapes
    {!resolve} means the handle state is beyond local repair and the
    caller should re-solve statelessly — see
    {!Milp.options.lp_dense} and the [Retry] ladder in [dpv_core]. *)

val solve : ?tol:float -> Lp.t -> status
(** One-shot solve with the revised engine: [create] + [resolve].
    [tol] is the pivot/pricing tolerance (default [1e-9]). *)

val solve_dense : ?tol:float -> Lp.t -> status
(** Retained dense two-phase reference implementation. *)

(** {1 Persistent solver handles} *)

type handle
(** A mutable solver bound to one constraint matrix.  Bounds and the
    objective may change between solves; the constraint rows may not. *)

type counters = {
  pivots : int;        (** simplex iterations, bound flips included *)
  warm_starts : int;   (** resolves that reused a factorized basis *)
  cold_starts : int;   (** resolves from the all-slack basis *)
  fallbacks : int;     (** resolves rescued by [solve_dense] *)
}

val create : ?tol:float -> Lp.t -> handle
(** Capture the model's rows, bounds and objective.  No solving happens
    until {!resolve}. *)

val set_var_bounds :
  handle -> Lp.var -> lo:float option -> up:float option -> unit
(** Change one variable's bounds in place ([None] = unbounded).  Cheap
    when the bounds are unchanged; otherwise the stored basis stays
    dual feasible and the next {!resolve} warm-starts with dual
    simplex. *)

val set_objective : handle -> Lp.objective_sense -> Lp.term list -> unit
(** Replace the objective.  The stored basis stays primal feasible and
    the next {!resolve} warm-starts with primal simplex. *)

val resolve :
  ?bound_changes:(Lp.var * float option * float option) list ->
  handle ->
  status
(** Solve the handle's current model, reusing the previous basis when
    one exists.  [bound_changes] is sugar for {!set_var_bounds} calls
    applied first. *)

val counters : handle -> counters
(** Cumulative over the handle's lifetime. *)

val pp_status : Format.formatter -> status -> unit
