(** Two-phase primal simplex over dense tableaus.

    Accepts any {!Lp.t} (integrality kinds are ignored here — the LP
    relaxation is solved).  Variables with general bounds are shifted /
    split into non-negative standard-form variables internally; the
    reported solution is in the original variable space.

    Termination: Dantzig pricing with an automatic switch to Bland's rule,
    which rules out cycling. *)

type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : ?tol:float -> Lp.t -> status
(** [tol] is the feasibility/pivot tolerance (default [1e-9]). *)

val pp_status : Format.formatter -> status -> unit
