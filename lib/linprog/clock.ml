let now_s () = Unix.gettimeofday ()

type deadline = float option

let deadline_after = function
  | None -> None
  | Some budget_s -> Some (now_s () +. budget_s)

let expired = function None -> false | Some t -> now_s () > t

let remaining_s = function
  | None -> None
  | Some t -> Some (Float.max 0.0 (t -. now_s ()))
