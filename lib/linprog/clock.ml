let now_s () = Unix.gettimeofday ()

(* Monotonic source for trace timestamps and latency histograms.
   Deadlines stay on [now_s]: a deadline is a promise about the wall
   clock, and jumping with it is the correct behavior there. *)
let monotonic_ns = Dpv_obs.Mclock.now_ns

type deadline = float option

let deadline_after = function
  | None -> None
  | Some budget_s -> Some (now_s () +. budget_s)

(* Inclusive, so a zero-second budget is expired from the start even
   when the clock has not ticked since the deadline was minted.  The
   deadline-jitter fault site makes one check on a finite deadline
   report expiry early — the recovery under test is the deadline-retry
   rung, which re-carves from the (not actually expired) budget. *)
let expired = function
  | None -> false
  | Some t -> Faults.fire Faults.Deadline_jitter || now_s () >= t

let remaining_s = function
  | None -> None
  | Some t -> Some (Float.max 0.0 (t -. now_s ()))

let carve deadline budget_s =
  match (remaining_s deadline, budget_s) with
  | None, b -> b
  | (Some _ as r), None -> r
  | Some r, Some b -> Some (Float.min r b)
