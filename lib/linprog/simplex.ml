type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(* Standard-form translation: every original variable is expressed as an
   affine combination of fresh non-negative variables.
     [lo, up]   -> lo + y,  with extra row  y <= up - lo
     [lo, +inf) -> lo + y
     (-inf, up] -> up - y
     free       -> y+ - y-                                            *)
type var_map = { offset : float; parts : (int * float) list }

type std_form = {
  n_std : int;                          (* number of non-negative vars *)
  rows : (float array * Lp.relation * float) list; (* dense rows over std vars *)
  cost : float array;                   (* minimization costs over std vars *)
  cost_const : float;                   (* constant offset of the objective *)
  maps : var_map array;                 (* orig var -> std combination *)
  negate_objective : bool;              (* original sense was Maximize *)
}

let build_std_form model =
  let nv = Lp.num_vars model in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let extra_rows = ref [] in
  let maps =
    Array.init nv (fun v ->
        match Lp.var_bounds model v with
        | Some lo, Some up ->
            let y = fresh () in
            (* y <= up - lo, recorded as a sparse pair resolved below *)
            extra_rows := (y, up -. lo) :: !extra_rows;
            { offset = lo; parts = [ (y, 1.0) ] }
        | Some lo, None ->
            let y = fresh () in
            { offset = lo; parts = [ (y, 1.0) ] }
        | None, Some up ->
            let y = fresh () in
            { offset = up; parts = [ (y, -1.0) ] }
        | None, None ->
            let yp = fresh () in
            let yn = fresh () in
            { offset = 0.0; parts = [ (yp, 1.0); (yn, -1.0) ] })
  in
  let n_std = !next in
  let dense_of_terms terms =
    let row = Array.make n_std 0.0 in
    let const = ref 0.0 in
    List.iter
      (fun (c, v) ->
        let m = maps.(v) in
        const := !const +. (c *. m.offset);
        List.iter
          (fun (sv, coeff) -> row.(sv) <- row.(sv) +. (c *. coeff))
          m.parts)
      terms;
    (row, !const)
  in
  let rows =
    List.map
      (fun (_, terms, rel, rhs) ->
        let row, const = dense_of_terms terms in
        (row, rel, rhs -. const))
      (Lp.constraints model)
  in
  let bound_rows =
    List.map
      (fun (y, ub) ->
        let row = Array.make n_std 0.0 in
        row.(y) <- 1.0;
        (row, Lp.Le, ub))
      !extra_rows
  in
  let sense, obj_terms = Lp.objective model in
  let negate_objective = sense = Lp.Maximize in
  let cost_row, cost_const = dense_of_terms obj_terms in
  let cost = if negate_objective then Array.map (fun c -> -.c) cost_row else cost_row in
  {
    n_std;
    rows = rows @ bound_rows;
    cost;
    cost_const;
    maps;
    negate_objective;
  }

(* Dense tableau: [m] rows over columns [0 .. ncols-1] plus an rhs column.
   [basis.(i)] is the column basic in row [i].  The objective row holds
   reduced costs; its rhs entry is the negated objective value. *)
type tableau = {
  a : float array array;       (* m x (ncols + 1) *)
  obj : float array;           (* ncols + 1 *)
  basis : int array;
  m : int;
  ncols : int;
}

let pivot t ~row ~col =
  let piv = t.a.(row).(col) in
  let r = t.a.(row) in
  for j = 0 to t.ncols do
    r.(j) <- r.(j) /. piv
  done;
  let eliminate target =
    let f = target.(col) in
    if f <> 0.0 then
      for j = 0 to t.ncols do
        target.(j) <- target.(j) -. (f *. r.(j))
      done
  in
  for i = 0 to t.m - 1 do
    if i <> row then eliminate t.a.(i)
  done;
  eliminate t.obj;
  t.basis.(row) <- col

(* One simplex phase: minimize the current objective row.  [allowed col]
   filters candidate entering columns (used to exclude artificials in
   phase 2).  Returns [`Optimal] or [`Unbounded]. *)
let run_phase ~tol ~allowed t =
  let bland_after = 20 * (t.m + t.ncols + 10) in
  let rec loop iter =
    if iter > 200 * (t.m + t.ncols + 100) then
      failwith "Simplex: iteration limit exceeded (numerical trouble)";
    let use_bland = iter > bland_after in
    (* Entering column: most negative reduced cost (Dantzig), or the first
       negative one (Bland) once cycling is suspected. *)
    let entering = ref (-1) in
    let best = ref (-.tol) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && t.obj.(j) < !best then begin
           entering := j;
           best := t.obj.(j);
           if use_bland then raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; ties broken by smallest basis index (Bland-safe). *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > tol then begin
          let ratio = t.a.(i).(t.ncols) /. aij in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol
               && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let solve ?(tol = 1e-9) model =
  let sf = build_std_form model in
  let rows = Array.of_list sf.rows in
  let m = Array.length rows in
  (* Flip rows so every rhs is non-negative, then count slack/artificial
     columns.  Le -> slack; Ge -> surplus + artificial; Eq -> artificial. *)
  let rows =
    Array.map
      (fun (row, rel, rhs) ->
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) row,
            (match rel with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq),
            -.rhs )
        else (row, rel, rhs))
      rows
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Lp.Ge | Lp.Eq -> acc + 1 | Lp.Le -> acc)
      0 rows
  in
  let ncols = sf.n_std + n_slack + n_art in
  let art_start = sf.n_std + n_slack in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m (-1) in
  let slack_idx = ref sf.n_std in
  let art_idx = ref art_start in
  Array.iteri
    (fun i (row, rel, rhs) ->
      Array.blit row 0 a.(i) 0 sf.n_std;
      a.(i).(ncols) <- rhs;
      (match rel with
      | Lp.Le ->
          a.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp.Ge ->
          a.(i).(!slack_idx) <- -1.0;
          incr slack_idx;
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx
      | Lp.Eq ->
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx))
    rows;
  let t = { a; obj = Array.make (ncols + 1) 0.0; basis; m; ncols } in
  (* ---- Phase 1: minimize the sum of artificials. ---- *)
  let phase2_needed = n_art > 0 in
  if phase2_needed then begin
    for j = art_start to ncols - 1 do
      t.obj.(j) <- 1.0
    done;
    (* Price out the basic artificials. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_start then
        for j = 0 to ncols do
          t.obj.(j) <- t.obj.(j) -. t.a.(i).(j)
        done
    done;
    match run_phase ~tol ~allowed:(fun _ -> true) t with
    | `Unbounded ->
        (* Phase-1 objective is bounded below by 0; cannot happen. *)
        failwith "Simplex: phase 1 unbounded"
    | `Optimal ->
        ();
  end;
  let phase1_value = -.t.obj.(ncols) in
  if phase2_needed && phase1_value > 1e-7 then Infeasible
  else begin
    (* Drive any leftover basic artificial out of the basis (its value is
       ~0).  If its row has no usable pivot the row is redundant; zero it. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_start then begin
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < art_start do
          if Float.abs t.a.(i).(!j) > sqrt tol then begin
            pivot t ~row:i ~col:!j;
            found := true
          end;
          incr j
        done;
        if not !found then begin
          Array.fill t.a.(i) 0 (ncols + 1) 0.0;
          (* keep the artificial basic in a null row; it can never pivot *)
        end
      end
    done;
    (* ---- Phase 2: original objective over non-artificial columns. ---- *)
    Array.fill t.obj 0 (ncols + 1) 0.0;
    Array.blit sf.cost 0 t.obj 0 sf.n_std;
    for i = 0 to m - 1 do
      let b = t.basis.(i) in
      if b < art_start && t.obj.(b) <> 0.0 then begin
        let cb = t.obj.(b) in
        for j = 0 to ncols do
          t.obj.(j) <- t.obj.(j) -. (cb *. t.a.(i).(j))
        done
      end
    done;
    let allowed j = j < art_start in
    match run_phase ~tol ~allowed t with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let std_solution = Array.make sf.n_std 0.0 in
        for i = 0 to m - 1 do
          if t.basis.(i) < sf.n_std then
            std_solution.(t.basis.(i)) <- t.a.(i).(ncols)
        done;
        let solution =
          Array.map
            (fun vm ->
              List.fold_left
                (fun acc (sv, coeff) -> acc +. (coeff *. std_solution.(sv)))
                vm.offset vm.parts)
            sf.maps
        in
        let minimized = -.t.obj.(ncols) +. if sf.negate_objective then 0.0 else sf.cost_const in
        let objective =
          if sf.negate_objective then -.(-.t.obj.(ncols)) +. sf.cost_const
          else minimized
        in
        Optimal { objective; solution }
  end

let pp_status fmt = function
  | Optimal { objective; solution } ->
      Format.fprintf fmt "optimal obj=%g at %a" objective Dpv_tensor.Vec.pp
        solution
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
