type status =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(* ===================================================================== *)
(* Dense two-phase reference implementation, retained as [solve_dense].  *)
(* It is the differential-testing oracle and the fallback when the       *)
(* revised engine below hits numerical trouble.                          *)
(* ===================================================================== *)

(* Standard-form translation: every original variable is expressed as an
   affine combination of fresh non-negative variables.
     [lo, up]   -> lo + y,  with extra row  y <= up - lo
     [lo, +inf) -> lo + y
     (-inf, up] -> up - y
     free       -> y+ - y-                                            *)
type var_map = { offset : float; parts : (int * float) list }

type std_form = {
  n_std : int;                          (* number of non-negative vars *)
  rows : (float array * Lp.relation * float) list; (* dense rows over std vars *)
  cost : float array;                   (* minimization costs over std vars *)
  cost_const : float;                   (* constant offset of the objective *)
  maps : var_map array;                 (* orig var -> std combination *)
  negate_objective : bool;              (* original sense was Maximize *)
}

let build_std_form model =
  let nv = Lp.num_vars model in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let extra_rows = ref [] in
  let maps =
    Array.init nv (fun v ->
        match Lp.var_bounds model v with
        | Some lo, Some up ->
            let y = fresh () in
            (* y <= up - lo, recorded as a sparse pair resolved below *)
            extra_rows := (y, up -. lo) :: !extra_rows;
            { offset = lo; parts = [ (y, 1.0) ] }
        | Some lo, None ->
            let y = fresh () in
            { offset = lo; parts = [ (y, 1.0) ] }
        | None, Some up ->
            let y = fresh () in
            { offset = up; parts = [ (y, -1.0) ] }
        | None, None ->
            let yp = fresh () in
            let yn = fresh () in
            { offset = 0.0; parts = [ (yp, 1.0); (yn, -1.0) ] })
  in
  let n_std = !next in
  let dense_of_terms terms =
    let row = Array.make n_std 0.0 in
    let const = ref 0.0 in
    List.iter
      (fun (c, v) ->
        let m = maps.(v) in
        const := !const +. (c *. m.offset);
        List.iter
          (fun (sv, coeff) -> row.(sv) <- row.(sv) +. (c *. coeff))
          m.parts)
      terms;
    (row, !const)
  in
  let rows =
    List.map
      (fun (_, terms, rel, rhs) ->
        let row, const = dense_of_terms terms in
        (row, rel, rhs -. const))
      (Lp.constraints model)
  in
  let bound_rows =
    List.map
      (fun (y, ub) ->
        let row = Array.make n_std 0.0 in
        row.(y) <- 1.0;
        (row, Lp.Le, ub))
      !extra_rows
  in
  let sense, obj_terms = Lp.objective model in
  let negate_objective = sense = Lp.Maximize in
  let cost_row, cost_const = dense_of_terms obj_terms in
  let cost = if negate_objective then Array.map (fun c -> -.c) cost_row else cost_row in
  {
    n_std;
    rows = rows @ bound_rows;
    cost;
    cost_const;
    maps;
    negate_objective;
  }

(* Dense tableau: [m] rows over columns [0 .. ncols-1] plus an rhs column.
   [basis.(i)] is the column basic in row [i].  The objective row holds
   reduced costs; its rhs entry is the negated objective value. *)
type tableau = {
  a : float array array;       (* m x (ncols + 1) *)
  obj : float array;           (* ncols + 1 *)
  basis : int array;
  m : int;
  ncols : int;
}

let pivot t ~row ~col =
  let piv = t.a.(row).(col) in
  let r = t.a.(row) in
  for j = 0 to t.ncols do
    r.(j) <- r.(j) /. piv
  done;
  let eliminate target =
    let f = target.(col) in
    if f <> 0.0 then
      for j = 0 to t.ncols do
        target.(j) <- target.(j) -. (f *. r.(j))
      done
  in
  for i = 0 to t.m - 1 do
    if i <> row then eliminate t.a.(i)
  done;
  eliminate t.obj;
  t.basis.(row) <- col

(* One simplex phase: minimize the current objective row.  [allowed col]
   filters candidate entering columns (used to exclude artificials in
   phase 2).  Returns [`Optimal] or [`Unbounded]. *)
let run_phase ~tol ~allowed t =
  let bland_after = 20 * (t.m + t.ncols + 10) in
  let rec loop iter =
    if iter > 200 * (t.m + t.ncols + 100) then
      failwith "Simplex: iteration limit exceeded (numerical trouble)";
    let use_bland = iter > bland_after in
    (* Entering column: most negative reduced cost (Dantzig), or the first
       negative one (Bland) once cycling is suspected. *)
    let entering = ref (-1) in
    let best = ref (-.tol) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && t.obj.(j) < !best then begin
           entering := j;
           best := t.obj.(j);
           if use_bland then raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test; ties broken by smallest basis index (Bland-safe). *)
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > tol then begin
          let ratio = t.a.(i).(t.ncols) /. aij in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol
               && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let solve_dense ?(tol = 1e-9) model =
  let sf = build_std_form model in
  let rows = Array.of_list sf.rows in
  let m = Array.length rows in
  (* Flip rows so every rhs is non-negative, then count slack/artificial
     columns.  Le -> slack; Ge -> surplus + artificial; Eq -> artificial. *)
  let rows =
    Array.map
      (fun (row, rel, rhs) ->
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) row,
            (match rel with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq),
            -.rhs )
        else (row, rel, rhs))
      rows
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Lp.Ge | Lp.Eq -> acc + 1 | Lp.Le -> acc)
      0 rows
  in
  let ncols = sf.n_std + n_slack + n_art in
  let art_start = sf.n_std + n_slack in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m (-1) in
  let slack_idx = ref sf.n_std in
  let art_idx = ref art_start in
  Array.iteri
    (fun i (row, rel, rhs) ->
      Array.blit row 0 a.(i) 0 sf.n_std;
      a.(i).(ncols) <- rhs;
      (match rel with
      | Lp.Le ->
          a.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Lp.Ge ->
          a.(i).(!slack_idx) <- -1.0;
          incr slack_idx;
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx
      | Lp.Eq ->
          a.(i).(!art_idx) <- 1.0;
          basis.(i) <- !art_idx;
          incr art_idx))
    rows;
  let t = { a; obj = Array.make (ncols + 1) 0.0; basis; m; ncols } in
  (* ---- Phase 1: minimize the sum of artificials. ---- *)
  let phase2_needed = n_art > 0 in
  if phase2_needed then begin
    for j = art_start to ncols - 1 do
      t.obj.(j) <- 1.0
    done;
    (* Price out the basic artificials. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_start then
        for j = 0 to ncols do
          t.obj.(j) <- t.obj.(j) -. t.a.(i).(j)
        done
    done;
    match run_phase ~tol ~allowed:(fun _ -> true) t with
    | `Unbounded ->
        (* Phase-1 objective is bounded below by 0; cannot happen. *)
        failwith "Simplex: phase 1 unbounded"
    | `Optimal ->
        ();
  end;
  let phase1_value = -.t.obj.(ncols) in
  if phase2_needed && phase1_value > 1e-7 then Infeasible
  else begin
    (* Drive any leftover basic artificial out of the basis (its value is
       ~0).  If its row has no usable pivot the row is redundant; zero it. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_start then begin
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < art_start do
          if Float.abs t.a.(i).(!j) > sqrt tol then begin
            pivot t ~row:i ~col:!j;
            found := true
          end;
          incr j
        done;
        if not !found then begin
          Array.fill t.a.(i) 0 (ncols + 1) 0.0;
          (* keep the artificial basic in a null row; it can never pivot *)
        end
      end
    done;
    (* ---- Phase 2: original objective over non-artificial columns. ---- *)
    Array.fill t.obj 0 (ncols + 1) 0.0;
    Array.blit sf.cost 0 t.obj 0 sf.n_std;
    for i = 0 to m - 1 do
      let b = t.basis.(i) in
      if b < art_start && t.obj.(b) <> 0.0 then begin
        let cb = t.obj.(b) in
        for j = 0 to ncols do
          t.obj.(j) <- t.obj.(j) -. (cb *. t.a.(i).(j))
        done
      end
    done;
    let allowed j = j < art_start in
    match run_phase ~tol ~allowed t with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let std_solution = Array.make sf.n_std 0.0 in
        for i = 0 to m - 1 do
          if t.basis.(i) < sf.n_std then
            std_solution.(t.basis.(i)) <- t.a.(i).(ncols)
        done;
        let solution =
          Array.map
            (fun vm ->
              List.fold_left
                (fun acc (sv, coeff) -> acc +. (coeff *. std_solution.(sv)))
                vm.offset vm.parts)
            sf.maps
        in
        let minimized = -.t.obj.(ncols) +. if sf.negate_objective then 0.0 else sf.cost_const in
        let objective =
          if sf.negate_objective then -.(-.t.obj.(ncols)) +. sf.cost_const
          else minimized
        in
        Optimal { objective; solution }
  end

(* ===================================================================== *)
(* Revised simplex with native bounded variables and basis reuse.        *)
(*                                                                       *)
(* Every constraint row becomes an equality by adding one slack whose    *)
(* bounds encode the relation (Le: [0,inf), Ge: (-inf,0], Eq: [0,0]).    *)
(* Variables keep their [lo,up] bounds; the ratio test handles bound     *)
(* flips directly, so no standard-form splitting and no Phase-1          *)
(* artificial columns are ever created.                                  *)
(*                                                                       *)
(* The basis inverse is kept explicitly (m x m, row-major) and updated   *)
(* in product form on each pivot, with a full refactorization every 64   *)
(* pivots to keep drift in check.  Cold starts run a zero-cost dual      *)
(* phase from the all-slack basis (with c = 0 every basis is dual        *)
(* feasible, so dual simplex is a pure primal-infeasibility chaser),     *)
(* then the primal phase with the real costs.  Warm starts after a       *)
(* bound change keep the old basis dual feasible and run dual simplex;   *)
(* warm starts after an objective change keep it primal feasible and     *)
(* run primal simplex.                                                   *)
(* ===================================================================== *)

exception Numerical_trouble of string

type counters = {
  pivots : int;
  warm_starts : int;
  cold_starts : int;
  fallbacks : int;
}

type handle = {
  n : int;                         (* structural variables *)
  m : int;                         (* constraint rows *)
  ncols : int;                     (* n + m (structural + slacks) *)
  col_rows : int array array;      (* sparse column pattern, all ncols *)
  col_coefs : float array array;
  rhs : float array;               (* m *)
  cost : float array;              (* ncols, minimization costs *)
  lo : float array;                (* ncols, -infinity when unbounded *)
  up : float array;                (* ncols, +infinity when unbounded *)
  basis : int array;               (* m: column basic in row i *)
  in_row : int array;              (* ncols: row where basic, or -1 *)
  at_upper : bool array;           (* ncols: nonbasic rests at upper *)
  binv : float array array;        (* m x m; binv.(r) is row r of B^-1 *)
  xb : float array;                (* m: values of basic variables *)
  d : float array;                 (* ncols: reduced costs *)
  alpha : float array;             (* scratch m: ftran of a column *)
  w : float array;                 (* scratch m *)
  yrow : float array;              (* scratch m *)
  scr_bmat : float array array;    (* scratch m x m: refactorization *)
  scr_inv : float array array;     (* scratch m x m: refactorization *)
  tol : float;
  base : Lp.t;                     (* model as given to [create] *)
  mutable obj_sense : Lp.objective_sense;
  mutable obj_terms : Lp.term list;
  mutable has_basis : bool;
  mutable since_refactor : int;
  mutable n_pivots : int;
  mutable n_warm : int;
  mutable n_cold : int;
  mutable n_fallbacks : int;
}

let feas_tol = 1e-7       (* primal feasibility *)
let dfeas_tol = 1e-7      (* dual feasibility *)
let degen_tol = 1e-10     (* step sizes below this count as degenerate *)
let piv_floor = 1e-11     (* hard floor on pivot magnitude *)
let refactor_every = 64

let is_fixed h j = h.lo.(j) = h.up.(j)
let is_free h j = h.lo.(j) = neg_infinity && h.up.(j) = infinity

(* Value of a nonbasic variable given its rest status.  Free variables
   rest at 0. *)
let nb_value h j =
  if h.at_upper.(j) then h.up.(j)
  else if h.lo.(j) > neg_infinity then h.lo.(j)
  else 0.0

(* Keep [at_upper] consistent with the bounds: a variable cannot rest at
   an infinite bound. *)
let normalize_status h j =
  if h.at_upper.(j) && h.up.(j) = infinity then h.at_upper.(j) <- false;
  if (not h.at_upper.(j)) && h.lo.(j) = neg_infinity && h.up.(j) < infinity
  then h.at_upper.(j) <- true

let create ?(tol = 1e-9) model =
  let n = Lp.num_vars model in
  let cons = Array.of_list (Lp.constraints model) in
  let m = Array.length cons in
  let ncols = n + m in
  let entries = Array.make ncols [] in
  Array.iteri
    (fun i (_, terms, _, _) ->
      List.iter
        (fun (c, v) -> if c <> 0.0 then entries.(v) <- (i, c) :: entries.(v))
        terms)
    cons;
  for i = 0 to m - 1 do
    entries.(n + i) <- [ (i, 1.0) ]
  done;
  let col_rows =
    Array.map (fun l -> Array.of_list (List.rev_map fst l)) entries
  in
  let col_coefs =
    Array.map (fun l -> Array.of_list (List.rev_map snd l)) entries
  in
  let lo = Array.make ncols neg_infinity in
  let up = Array.make ncols infinity in
  for v = 0 to n - 1 do
    let l, u = Lp.var_bounds model v in
    lo.(v) <- (match l with None -> neg_infinity | Some x -> x);
    up.(v) <- (match u with None -> infinity | Some x -> x)
  done;
  let rhs = Array.make m 0.0 in
  Array.iteri
    (fun i (_, _, rel, b) ->
      rhs.(i) <- b;
      match rel with
      | Lp.Le -> lo.(n + i) <- 0.0
      | Lp.Ge -> up.(n + i) <- 0.0
      | Lp.Eq ->
          lo.(n + i) <- 0.0;
          up.(n + i) <- 0.0)
    cons;
  let obj_sense, obj_terms = Lp.objective model in
  let cost = Array.make ncols 0.0 in
  let sign = if obj_sense = Lp.Maximize then -1.0 else 1.0 in
  List.iter (fun (c, v) -> cost.(v) <- cost.(v) +. (sign *. c)) obj_terms;
  {
    n;
    m;
    ncols;
    col_rows;
    col_coefs;
    rhs;
    cost;
    lo;
    up;
    basis = Array.make m (-1);
    in_row = Array.make ncols (-1);
    at_upper = Array.make ncols false;
    binv = Array.init m (fun _ -> Array.make m 0.0);
    xb = Array.make m 0.0;
    d = Array.make ncols 0.0;
    alpha = Array.make m 0.0;
    w = Array.make m 0.0;
    yrow = Array.make m 0.0;
    scr_bmat = Array.init m (fun _ -> Array.make m 0.0);
    scr_inv = Array.init m (fun _ -> Array.make m 0.0);
    tol;
    base = model;
    obj_sense;
    obj_terms;
    has_basis = false;
    since_refactor = 0;
    n_pivots = 0;
    n_warm = 0;
    n_cold = 0;
    n_fallbacks = 0;
  }

(* xb = B^-1 (rhs - N x_N), from scratch. *)
let compute_xb h =
  let t = h.w in
  Array.blit h.rhs 0 t 0 h.m;
  for j = 0 to h.ncols - 1 do
    if h.in_row.(j) < 0 then begin
      let v = nb_value h j in
      if v <> 0.0 then begin
        let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
        for k = 0 to Array.length rows - 1 do
          t.(rows.(k)) <- t.(rows.(k)) -. (coefs.(k) *. v)
        done
      end
    end
  done;
  for r = 0 to h.m - 1 do
    let br = h.binv.(r) in
    let acc = ref 0.0 in
    for i = 0 to h.m - 1 do
      acc := !acc +. (br.(i) *. t.(i))
    done;
    h.xb.(r) <- !acc
  done

(* Reduced costs d = c - c_B B^-1 A, from scratch (exact recomputation
   after every pivot keeps warm-start dual-feasibility checks honest). *)
let compute_d h =
  let y = h.yrow in
  for j = 0 to h.m - 1 do
    let acc = ref 0.0 in
    for i = 0 to h.m - 1 do
      let cb = h.cost.(h.basis.(i)) in
      if cb <> 0.0 then acc := !acc +. (cb *. h.binv.(i).(j))
    done;
    y.(j) <- !acc
  done;
  for j = 0 to h.ncols - 1 do
    if h.in_row.(j) >= 0 then h.d.(j) <- 0.0
    else begin
      let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
      let acc = ref h.cost.(j) in
      for k = 0 to Array.length rows - 1 do
        acc := !acc -. (y.(rows.(k)) *. coefs.(k))
      done;
      h.d.(j) <- !acc
    end
  done

(* alpha = B^-1 A_j. *)
let ftran h j =
  let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
  for r = 0 to h.m - 1 do
    let br = h.binv.(r) in
    let acc = ref 0.0 in
    for k = 0 to Array.length rows - 1 do
      acc := !acc +. (br.(rows.(k)) *. coefs.(k))
    done;
    h.alpha.(r) <- !acc
  done

(* Entry (r, j) of B^-1 A given row r of B^-1. *)
let row_dot_col h beta j =
  let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
  let acc = ref 0.0 in
  for k = 0 to Array.length rows - 1 do
    acc := !acc +. (beta.(rows.(k)) *. coefs.(k))
  done;
  !acc

(* Rebuild B^-1 from the basis by Gauss-Jordan with partial pivoting,
   then recompute xb exactly.  Raises on a (numerically) singular basis. *)
let refactorize h =
  if Faults.fire Faults.Refactor_singular then
    raise (Numerical_trouble "injected singular refactorization");
  let trace_t0 = Dpv_obs.Trace.begin_ns () in
  let m = h.m in
  (* The handle owns one worker-local scratch arena for these two m x m
     matrices: refactorization runs every [refactor_every] pivots per
     handle, and with batched subtree tasks each pool worker holds one
     handle, so reusing the arrays here removes the dominant per-worker
     allocation of the parallel search.  Row swaps below permute the
     row references inside the scratch arrays; every row is fully
     overwritten at the top of each call, so the permutation is
     harmless. *)
  let bmat = h.scr_bmat in
  let inv = h.scr_inv in
  for i = 0 to m - 1 do
    Array.fill bmat.(i) 0 m 0.0;
    Array.fill inv.(i) 0 m 0.0;
    inv.(i).(i) <- 1.0
  done;
  for r = 0 to m - 1 do
    let j = h.basis.(r) in
    let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
    for k = 0 to Array.length rows - 1 do
      bmat.(rows.(k)).(r) <- coefs.(k)
    done
  done;
  for c = 0 to m - 1 do
    let p = ref c in
    for i = c + 1 to m - 1 do
      if Float.abs bmat.(i).(c) > Float.abs bmat.(!p).(c) then p := i
    done;
    if Float.abs bmat.(!p).(c) < piv_floor then
      raise (Numerical_trouble "singular basis in refactorization");
    if !p <> c then begin
      let t = bmat.(c) in
      bmat.(c) <- bmat.(!p);
      bmat.(!p) <- t;
      let t = inv.(c) in
      inv.(c) <- inv.(!p);
      inv.(!p) <- t
    end;
    let piv = bmat.(c).(c) in
    let brow = bmat.(c) and irow = inv.(c) in
    for j = 0 to m - 1 do
      brow.(j) <- brow.(j) /. piv;
      irow.(j) <- irow.(j) /. piv
    done;
    for i = 0 to m - 1 do
      if i <> c then begin
        let f = bmat.(i).(c) in
        if f <> 0.0 then begin
          let bi = bmat.(i) and ii = inv.(i) in
          for j = 0 to m - 1 do
            bi.(j) <- bi.(j) -. (f *. brow.(j));
            ii.(j) <- ii.(j) -. (f *. irow.(j))
          done
        end
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 h.binv.(i) 0 m
  done;
  h.since_refactor <- 0;
  compute_xb h;
  Dpv_obs.Trace.complete ~name:"simplex.refactorize" trace_t0

(* Product-form basis-inverse update: column q enters in row r. *)
let apply_pivot h ~r ~q =
  let piv = h.alpha.(r) in
  if Float.abs piv < piv_floor then
    raise (Numerical_trouble "pivot element below floor");
  let br = h.binv.(r) in
  for k = 0 to h.m - 1 do
    br.(k) <- br.(k) /. piv
  done;
  for i = 0 to h.m - 1 do
    if i <> r then begin
      let f = h.alpha.(i) in
      if f <> 0.0 then begin
        let bi = h.binv.(i) in
        for k = 0 to h.m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done
      end
    end
  done;
  h.in_row.(h.basis.(r)) <- -1;
  h.basis.(r) <- q;
  h.in_row.(q) <- r;
  h.n_pivots <- h.n_pivots + 1;
  h.since_refactor <- h.since_refactor + 1;
  (* Injected silent corruption: scribble on one row of B^-1 (and the
     matching basic value) without raising.  Only the post-solve
     residual check can catch this — which is the point. *)
  if Faults.fire Faults.Pivot_corrupt then begin
    let s = abs (Faults.seed ()) in
    let row = ((s * 31) + 17) mod h.m in
    let magnitude = 2.0 +. float_of_int (s mod 7) in
    let br = h.binv.(row) in
    for k = 0 to h.m - 1 do
      br.(k) <- br.(k) +. magnitude
    done;
    h.xb.(row) <- h.xb.(row) +. magnitude
  end

let maybe_refactor h =
  if h.since_refactor >= refactor_every then refactorize h

let max_iters h = 200 * (h.m + h.ncols + 100)
let bland_threshold h = h.m + h.ncols + 20

(* ---- Primal bounded-variable simplex.  Requires a primal-feasible
   basis and current reduced costs; minimizes.  Returns [`Optimal] or
   [`Unbounded]. ---- *)
let primal_simplex h =
  let tol = h.tol in
  let bland = ref false in
  let degen_streak = ref 0 in
  let rec loop iter =
    if iter > max_iters h then
      raise (Numerical_trouble "primal iteration limit");
    (* Entering variable: most negative effective reduced cost
       (Dantzig); min-index first-eligible in Bland mode. *)
    let enter = ref (-1) in
    let enter_dir = ref 1.0 in
    let best = ref (-.tol) in
    (try
       for j = 0 to h.ncols - 1 do
         if h.in_row.(j) < 0 && not (is_fixed h j) then begin
           let dj = h.d.(j) in
           let eligible, dir =
             if is_free h j then
               if dj < -.tol then (true, 1.0)
               else if dj > tol then (true, -1.0)
               else (false, 1.0)
             else if h.at_upper.(j) then (dj > tol, -1.0)
             else (dj < -.tol, 1.0)
           in
           if eligible then begin
             let eff = dir *. dj in
             if eff < !best then begin
               best := eff;
               enter := j;
               enter_dir := dir;
               if !bland then raise Exit
             end
           end
         end
       done
     with Exit -> ());
    if !enter < 0 then `Optimal
    else begin
      let q = !enter and dir = !enter_dir in
      ftran h q;
      (* Ratio test over basic variables plus the entering variable's own
         opposite bound (bound flip). *)
      let gap =
        if is_free h q then infinity
        else if dir > 0.0 then h.up.(q) -. h.lo.(q)
        else h.up.(q) -. h.lo.(q)
      in
      let t_best = ref gap in
      let leave = ref (-1) in
      let leave_up = ref false in
      let piv_abs = ref 0.0 in
      for i = 0 to h.m - 1 do
        let a = dir *. h.alpha.(i) in
        let k = h.basis.(i) in
        let t, to_upper =
          if a > tol && h.lo.(k) > neg_infinity then
            (Float.max 0.0 ((h.xb.(i) -. h.lo.(k)) /. a), false)
          else if a < -.tol && h.up.(k) < infinity then
            (Float.max 0.0 ((h.up.(k) -. h.xb.(i)) /. -.a), true)
          else (infinity, false)
        in
        if t < infinity then begin
          let better =
            t < !t_best -. 1e-12
            || (t < !t_best +. 1e-12
               && !leave >= 0
               &&
               if !bland then k < h.basis.(!leave)
               else Float.abs h.alpha.(i) > !piv_abs)
          in
          if better then begin
            t_best := t;
            leave := i;
            leave_up := to_upper;
            piv_abs := Float.abs h.alpha.(i)
          end
        end
      done;
      if !t_best = infinity then `Unbounded
      else begin
        let t = !t_best in
        if t > degen_tol then degen_streak := 0
        else begin
          incr degen_streak;
          if !degen_streak > bland_threshold h then bland := true
        end;
        if !leave < 0 then begin
          (* Bound flip: the entering variable crosses to its opposite
             bound before any basic variable blocks. *)
          h.at_upper.(q) <- not h.at_upper.(q);
          if t <> 0.0 then
            for i = 0 to h.m - 1 do
              h.xb.(i) <- h.xb.(i) -. (dir *. t *. h.alpha.(i))
            done;
          h.n_pivots <- h.n_pivots + 1;
          loop (iter + 1)
        end
        else begin
          let r = !leave in
          let newval = nb_value h q +. (dir *. t) in
          for i = 0 to h.m - 1 do
            if i <> r then h.xb.(i) <- h.xb.(i) -. (dir *. t *. h.alpha.(i))
          done;
          h.at_upper.(h.basis.(r)) <- !leave_up;
          apply_pivot h ~r ~q;
          h.xb.(r) <- newval;
          maybe_refactor h;
          compute_d h;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

(* ---- Dual simplex.  Requires a dual-feasible basis ([~zero:true]
   pins the costs at 0, for which every basis is dual feasible — that is
   the cold-start feasibility phase).  Chases primal bound violations;
   returns [`Feasible] or [`Infeasible]. ---- *)
let dual_simplex ~zero h =
  let tol = h.tol in
  let bland = ref false in
  let stall_streak = ref 0 in
  let prev_viol = ref infinity in
  let rec loop iter =
    if iter > max_iters h then
      raise (Numerical_trouble "dual iteration limit");
    (* Leaving row: largest bound violation (min basic index in Bland
       mode).  Also track the total violation to detect stalling. *)
    let r = ref (-1) in
    let below = ref false in
    let best_v = ref feas_tol in
    let total_v = ref 0.0 in
    for i = 0 to h.m - 1 do
      let k = h.basis.(i) in
      let v_below = h.lo.(k) -. h.xb.(i) in
      let v_above = h.xb.(i) -. h.up.(k) in
      if v_below > feas_tol then begin
        total_v := !total_v +. v_below;
        let take =
          if !bland then !r < 0 || k < h.basis.(!r) else v_below > !best_v
        in
        if take then begin
          r := i;
          below := true;
          if not !bland then best_v := v_below
        end
      end
      else if v_above > feas_tol then begin
        total_v := !total_v +. v_above;
        let take =
          if !bland then !r < 0 || k < h.basis.(!r) else v_above > !best_v
        in
        if take then begin
          r := i;
          below := false;
          if not !bland then best_v := v_above
        end
      end
    done;
    if !r < 0 then `Feasible
    else begin
      if !total_v >= !prev_viol -. 1e-12 then begin
        incr stall_streak;
        if !stall_streak > bland_threshold h then bland := true
      end
      else stall_streak := 0;
      prev_viol := !total_v;
      let r = !r in
      let below = !below in
      let k = h.basis.(r) in
      let target = if below then h.lo.(k) else h.up.(k) in
      let beta = h.binv.(r) in
      (* Entering variable: dual ratio test.  A nonbasic j moving by
         t >= 0 in its admissible direction dir changes xb_r by
         -dir*t*a_rj; we need xb_r to move toward [target]. *)
      let q = ref (-1) in
      let q_dir = ref 1.0 in
      let best_ratio = ref infinity in
      let best_abs = ref 0.0 in
      for j = 0 to h.ncols - 1 do
        if h.in_row.(j) < 0 && not (is_fixed h j) then begin
          let a = row_dot_col h beta j in
          if Float.abs a > tol then begin
            let eligible, dir =
              if is_free h j then (true, if below then -.Float.of_int (compare a 0.0) else Float.of_int (compare a 0.0))
              else if h.at_upper.(j) then
                if below then (a > tol, -1.0) else (a < -.tol, -1.0)
              else if below then (a < -.tol, 1.0)
              else (a > tol, 1.0)
            in
            if eligible then begin
              let ratio = if zero then 0.0 else Float.abs h.d.(j) /. Float.abs a in
              let better =
                ratio < !best_ratio -. 1e-12
                || (ratio < !best_ratio +. 1e-12
                   &&
                   if !bland then !q < 0 || j < !q
                   else Float.abs a > !best_abs)
              in
              if better then begin
                q := j;
                q_dir := dir;
                best_ratio := ratio;
                best_abs := Float.abs a
              end
            end
          end
        end
      done;
      if !q < 0 then `Infeasible
      else begin
        let q = !q and dir = !q_dir in
        ftran h q;
        let denom = dir *. h.alpha.(r) in
        if Float.abs denom < piv_floor then
          raise (Numerical_trouble "dual pivot element below floor");
        let t = Float.max 0.0 ((h.xb.(r) -. target) /. denom) in
        let newval = nb_value h q +. (dir *. t) in
        for i = 0 to h.m - 1 do
          if i <> r then h.xb.(i) <- h.xb.(i) -. (dir *. t *. h.alpha.(i))
        done;
        h.at_upper.(k) <- not below;
        apply_pivot h ~r ~q;
        h.xb.(r) <- newval;
        maybe_refactor h;
        if not zero then compute_d h;
        loop (iter + 1)
      end
    end
  in
  loop 0

let primal_feasible h =
  let ok = ref true in
  for i = 0 to h.m - 1 do
    let k = h.basis.(i) in
    if h.xb.(i) < h.lo.(k) -. feas_tol || h.xb.(i) > h.up.(k) +. feas_tol then
      ok := false
  done;
  !ok

let dual_feasible h =
  let ok = ref true in
  for j = 0 to h.ncols - 1 do
    if h.in_row.(j) < 0 && not (is_fixed h j) then begin
      let dj = h.d.(j) in
      if is_free h j then begin
        if Float.abs dj > dfeas_tol then ok := false
      end
      else if h.at_upper.(j) then begin
        if dj > dfeas_tol then ok := false
      end
      else if h.lo.(j) > neg_infinity then begin
        if dj < -.dfeas_tol then ok := false
      end
    end
  done;
  !ok

let set_var_bounds h v ~lo ~up =
  let nlo = match lo with None -> neg_infinity | Some x -> x in
  let nup = match up with None -> infinity | Some x -> x in
  if nlo <> h.lo.(v) || nup <> h.up.(v) then begin
    if h.has_basis && h.in_row.(v) < 0 then begin
      let oldv = nb_value h v in
      h.lo.(v) <- nlo;
      h.up.(v) <- nup;
      normalize_status h v;
      let newv = nb_value h v in
      let delta = newv -. oldv in
      (* Keep xb consistent with the moved nonbasic value; the basis
         stays dual feasible, which is what the warm resolve exploits. *)
      if delta <> 0.0 then begin
        ftran h v;
        for i = 0 to h.m - 1 do
          h.xb.(i) <- h.xb.(i) -. (delta *. h.alpha.(i))
        done
      end
    end
    else begin
      h.lo.(v) <- nlo;
      h.up.(v) <- nup
    end
  end

let set_objective h sense terms =
  h.obj_sense <- sense;
  h.obj_terms <- terms;
  Array.fill h.cost 0 h.ncols 0.0;
  let sign = if sense = Lp.Maximize then -1.0 else 1.0 in
  List.iter (fun (c, v) -> h.cost.(v) <- h.cost.(v) +. (sign *. c)) terms;
  if h.has_basis then compute_d h

(* The model the handle currently represents: base structure with the
   handle's live bounds and objective.  Used by the dense fallback. *)
let current_model h =
  let opt x =
    if x = neg_infinity || x = infinity then None else Some x
  in
  let model = ref h.base in
  for v = 0 to h.n - 1 do
    model := Lp.set_var_bounds !model v ~lo:(opt h.lo.(v)) ~up:(opt h.up.(v))
  done;
  Lp.set_objective !model h.obj_sense h.obj_terms

let reset_basis h =
  for i = 0 to h.m - 1 do
    h.basis.(i) <- h.n + i
  done;
  Array.fill h.in_row 0 h.ncols (-1);
  for i = 0 to h.m - 1 do
    h.in_row.(h.n + i) <- i
  done;
  for j = 0 to h.ncols - 1 do
    h.at_upper.(j) <- false;
    normalize_status h j
  done;
  for i = 0 to h.m - 1 do
    let bi = h.binv.(i) in
    Array.fill bi 0 h.m 0.0;
    bi.(i) <- 1.0
  done;
  h.since_refactor <- 0;
  compute_xb h

(* Concrete row residual of the candidate basic solution over ALL
   columns (structural + slacks), computed straight from the constraint
   columns — deliberately not through B^-1, because a corrupted basis
   inverse cannot vouch for itself.  In the bounded-slack formulation
   [Ax = rhs] holds exactly at any consistent basic point, so a large
   residual means the revised state is lying and the resolve must fall
   back instead of reporting a fabricated optimum. *)
let residual_check h =
  let res = h.w in
  Array.blit h.rhs 0 res 0 h.m;
  let scale = ref 1.0 in
  for j = 0 to h.ncols - 1 do
    let v = if h.in_row.(j) >= 0 then h.xb.(h.in_row.(j)) else nb_value h j in
    if v <> 0.0 then begin
      let rows = h.col_rows.(j) and coefs = h.col_coefs.(j) in
      for k = 0 to Array.length rows - 1 do
        let contrib = coefs.(k) *. v in
        res.(rows.(k)) <- res.(rows.(k)) -. contrib;
        let a = Float.abs contrib in
        if a > !scale then scale := a
      done
    end
  done;
  for r = 0 to h.m - 1 do
    if Float.abs res.(r) > 1e-6 *. !scale then
      raise (Numerical_trouble "solution residual check failed")
  done

let extract_optimal h =
  residual_check h;
  let solution =
    Array.init h.n (fun j ->
        if h.in_row.(j) >= 0 then h.xb.(h.in_row.(j)) else nb_value h j)
  in
  let objective = Lp.eval_term_list h.obj_terms solution in
  Optimal { objective; solution }

let finish_primal h =
  match primal_simplex h with
  | `Optimal ->
      h.has_basis <- true;
      extract_optimal h
  | `Unbounded ->
      h.has_basis <- true;
      Unbounded

(* Feasibility phase from the current basis: zero-cost dual simplex
   (trivially dual feasible), then the real costs. *)
let feasibility_then_primal h =
  Array.fill h.d 0 h.ncols 0.0;
  match dual_simplex ~zero:true h with
  | `Infeasible ->
      compute_d h;
      h.has_basis <- true;
      Infeasible
  | `Feasible ->
      compute_d h;
      finish_primal h

let bounds_conflict h =
  let conflict = ref false in
  for j = 0 to h.ncols - 1 do
    if h.lo.(j) > h.up.(j) +. h.tol then conflict := true
  done;
  !conflict

let resolve ?(bound_changes = []) h =
  List.iter (fun (v, lo, up) -> set_var_bounds h v ~lo ~up) bound_changes;
  (* The forced-trouble fault site sits OUTSIDE the fallback handler
     below on purpose: it models trouble the internal rescue cannot
     absorb, so the exception escapes to the caller (the query-level
     retry ladder solves on [solve_dense] instead). *)
  if Faults.fire Faults.Lp_trouble then
    raise (Numerical_trouble "injected numerical trouble");
  let warm = h.has_basis in
  if warm then h.n_warm <- h.n_warm + 1 else h.n_cold <- h.n_cold + 1;
  let trace_t0 = Dpv_obs.Trace.begin_ns () in
  let result =
    if bounds_conflict h then Infeasible
    else
      try
        if not h.has_basis then begin
          reset_basis h;
          feasibility_then_primal h
        end
        else if dual_feasible h then
          match dual_simplex ~zero:false h with
          | `Infeasible -> Infeasible
          | `Feasible -> finish_primal h
        else if primal_feasible h then finish_primal h
        else feasibility_then_primal h
      with Numerical_trouble _ ->
        (* The revised state may be arbitrarily corrupted at this point
           (mid-pivot rest statuses, a singular or scribbled B^-1).  Drop
           the basis entirely: with [has_basis] cleared the next resolve
           rebuilds from the all-slack basis via [reset_basis] — a
           refactorization from scratch — and [set_var_bounds] stops
           routing incremental updates through the dead inverse, so a
           corrupted basis is never reused. *)
        h.n_fallbacks <- h.n_fallbacks + 1;
        h.has_basis <- false;
        h.since_refactor <- 0;
        solve_dense ~tol:h.tol (current_model h)
  in
  if trace_t0 <> 0 then
    Dpv_obs.Trace.complete
      ~args:[ ("start", if warm then "warm" else "cold") ]
      ~name:"simplex.resolve" trace_t0;
  result

let counters h =
  {
    pivots = h.n_pivots;
    warm_starts = h.n_warm;
    cold_starts = h.n_cold;
    fallbacks = h.n_fallbacks;
  }

let solve ?tol model = resolve (create ?tol model)

let pp_status fmt = function
  | Optimal { objective; solution } ->
      Format.fprintf fmt "optimal obj=%g at %a" objective Dpv_tensor.Vec.pp
        solution
  | Infeasible -> Format.fprintf fmt "infeasible"
  | Unbounded -> Format.fprintf fmt "unbounded"
