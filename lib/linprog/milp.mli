(** Mixed-integer linear programming by branch-and-bound on {!Simplex}.

    Designed for the verification workload: feasibility queries over
    big-M ReLU encodings where the integer variables are the binary
    phase indicators.  Also solves general small MILPs. *)

type result =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded
      (** The LP relaxation is unbounded (the MILP may be too). *)
  | Node_limit
      (** Search stopped at [max_nodes] without a conclusive answer. *)

type stats = {
  nodes_explored : int;
  lp_solved : int;
  incumbent_updates : int;
}

type options = {
  max_nodes : int;      (** branch-and-bound node budget *)
  int_tol : float;      (** integrality tolerance *)
  find_first : bool;    (** stop at the first integer-feasible solution;
                            the natural mode for feasibility queries *)
}

val default_options : options
(** [{ max_nodes = 200_000; int_tol = 1e-6; find_first = false }] *)

val solve : ?options:options -> Lp.t -> result
val solve_with_stats : ?options:options -> Lp.t -> result * stats
