(** Mixed-integer linear programming by branch-and-bound on {!Simplex}.

    Designed for the verification workload: feasibility queries over
    big-M ReLU encodings where the integer variables are the binary
    phase indicators.  Also solves general small MILPs.

    This module is the sequential solver; {!Milp_par} runs the same
    search across several domains and falls back to this code when a
    single worker is requested. *)

type result =
  | Optimal of { objective : float; solution : float array }
      (** Best integer-feasible point, with an optimality proof: the
          branch-and-bound tree was exhausted (or pruned) in full. *)
  | Feasible of { objective : float; solution : float array }
      (** An integer-feasible incumbent {e without} an optimality
          proof: the search was truncated by the node cap, the
          wall-clock deadline, a [find_first] early exit, or an
          unbounded relaxation on some open branch.  The solution is a
          genuine feasible point and may serve as a witness, but the
          objective is only a bound on the true optimum. *)
  | Infeasible
  | Unbounded
      (** The {e root} LP relaxation is unbounded (the MILP may be
          too).  Only the root can make this claim: below a bounded
          root every child's feasible set is contained in the root's,
          so a child relaxation reported unbounded is a numerical
          artifact — the solvers treat it as truncation (the subtree is
          dropped, siblings are still explored) and the run degrades to
          {!Feasible} or {!Node_limit} honesty instead. *)
  | Node_limit
      (** Search stopped without a conclusive answer and without an
          incumbent: the [max_nodes] cap was hit, or a non-root
          unbounded relaxation forced a subtree to be dropped. *)
  | Timeout
      (** Search stopped at the wall-clock deadline without a
          conclusive answer.  Queries should degrade to "unknown"
          rather than spin to the node cap. *)

type stats = {
  nodes_explored : int;
  lp_solved : int;
  incumbent_updates : int;
  lp_time_s : float;            (** wall time spent inside {!Simplex} *)
  per_worker_nodes : int array; (** node count by worker; [[|n|]] when
                                    solved sequentially *)
  steals : int;                 (** work-stealing events (0 sequential) *)
  max_queue_depth : int;        (** deepest any subproblem queue got,
                                    counting the seeded root — so it is
                                    at least 1 whenever a node was
                                    explored, sequentially or not *)
  pivots : int;                 (** simplex iterations across all node
                                    LPs, bound flips included *)
  warm_starts : int;            (** node LPs re-solved from a parent's
                                    factorized basis (dual simplex) *)
  cold_starts : int;            (** node LPs solved from scratch: the
                                    root, the first node each parallel
                                    worker touches, and any solve after
                                    a numerical-trouble fallback *)
  fallbacks : int;              (** node LPs rescued by the dense
                                    reference solver after the revised
                                    engine hit numerical trouble *)
  absint_phase_fixes : int;     (** binary phase variables fixed by the
                                    abstract-interpretation guide
                                    without branching *)
  absint_prunes : int;          (** nodes discharged by the guide before
                                    their LP was ever solved (they do
                                    not count toward [nodes_explored]) *)
  absint_incr_hits : int;       (** guide consults that resumed from at
                                    least one cached layer state instead
                                    of propagating from scratch *)
  absint_layers_propagated : int;
                                (** DeepPoly layer transfers the guide
                                    actually ran across all consults *)
  absint_layers_saved : int;    (** layer transfers skipped by reusing
                                    cached prefix states (scratch-mode
                                    propagation would have run
                                    [layers_propagated + layers_saved]) *)
  absint_cache_evictions : int; (** layer states dropped from the
                                    guide's prefix cache for the memory
                                    budget (counted once per guide
                                    instance per evicted layer) *)
}

val empty_stats : stats
(** All-zero statistics; the baseline for non-MILP code paths that must
    still report a [stats] record. *)

val add_stats : stats -> stats -> stats
(** Componentwise sum (concatenating [per_worker_nodes], maxing
    [max_queue_depth]) — used when one verification query is answered
    by several MILP solves, e.g. under input bisection. *)

type branch_rule =
  | Most_fractional  (** classic most-fractional branching (default) *)
  | Bound_width
      (** among fractional binaries, branch on the one whose
          pre-activation interval (as scored by the [absint] guide) is
          widest; falls back to [Most_fractional] when no guide is
          armed or it scored no candidate *)
  | Guide_order
      (** branch on the {e deepest} guide-scored fractional binary.
          The [absint] guide lists crossing binaries in network layer
          order, so this fixes ReLU phases output-end-first down each
          DFS path: consecutive nodes then differ only in the deepest
          layers, which is exactly the access pattern the incremental
          guide's prefix cache resumes cheapest.  Falls back to
          [Most_fractional] when no guide is armed or it scored no
          candidate *)

type guidance = {
  prune : bool;
      (** the node's region provably misses the query: discard it
          without solving its LP *)
  fix : (Lp.var * float) list;
      (** binaries whose phase is implied by the node's bounds; the
          solver fixes each variable to the given 0/1 value before the
          LP solve *)
  widths : (Lp.var * float) list;
      (** pre-activation interval width per still-free binary, the
          score used by {!Bound_width} branching *)
}

type guide = Lp.t -> guidance
(** An abstract-interpretation oracle consulted once per node, before
    the node's LP is solved.  Must be sound: [prune] only when no point
    of the node's feasible region satisfies the query, [fix] only
    phases implied (up to feasibility-preserving tie-breaks at 0) by
    the node's bounds.  Built over DeepPoly by [Dpv_core.Absguide];
    this module only sees the closure, so [lib/linprog] stays free of
    any dependency on the abstract domains. *)

type guide_stats = {
  incr_hits : int;
  layers_propagated : int;
  layers_saved : int;
  cache_evictions : int;
}
(** Incremental-propagation work done by a stateful guide; see the
    matching [absint_*] fields of {!stats}.  All zero for stateless
    guides. *)

val empty_guide_stats : guide_stats
val sub_guide_stats : guide_stats -> guide_stats -> guide_stats

type guide_factory = {
  new_guide : unit -> guide;
      (** a fresh guide instance.  Instances may carry mutable
          propagation caches, so each is confined to the solver thread
          that requested it: the sequential solver makes one per solve,
          {!Milp_par} one per worker domain. *)
  guide_stats : unit -> guide_stats;
      (** counters aggregated over every instance this factory created.
          Solvers snapshot before and after a search and record the
          delta, so factories may be reused across solves. *)
}
(** How solvers obtain guides.  The factory itself must be safe to call
    from the domain that owns the solve; instance creation happens on
    the worker domains but is serialized per instance. *)

val stateless_guide : guide -> guide_factory
(** Wrap a stateless per-node closure as a factory (every instance is
    the same closure; stats stay zero).  The natural constructor for
    tests and ad-hoc heuristics. *)

type options = {
  max_nodes : int;      (** branch-and-bound node budget *)
  int_tol : float;      (** integrality tolerance *)
  find_first : bool;    (** stop at the first integer-feasible solution;
                            the natural mode for feasibility queries.
                            Incumbents are reported as {!Feasible}
                            (never {!Optimal}) in this mode *)
  workers : int;        (** domains for {!Milp_par}; this module ignores
                            any value except to assert it is positive *)
  task_batch : int;     (** nodes a {!Milp_par} pool task explores
                            depth-first before handing leftover subtrees
                            back to the pool (default 32; values < 1
                            clamp to 1, which restores one-node tasks).
                            Batching amortizes per-task pool overhead
                            and keeps consecutive node LPs on the same
                            worker handle's warm basis; this sequential
                            module ignores it — its DFS is already one
                            unbroken batch *)
  time_limit_s : float option;
      (** wall-clock budget; [None] never expires.  Measured on a
          monotonic wall clock, not CPU time, so it stays meaningful
          under multi-domain search. *)
  lp_dense : bool;
      (** solve every node LP with {!Simplex.solve_dense} instead of
          the warm-started revised engine.  Slow but stateless between
          nodes; the retry ladder switches this on after an escaped
          [Numerical_trouble]. *)
  absint : guide_factory option;
      (** abstract-interpretation guide factory; each search
          instantiates its own guide(s) and consults one per node
          ([None], the default, leaves the search bit-for-bit identical
          to the unguided solver) *)
  branch_rule : branch_rule;  (** branch-variable selection rule *)
}

val default_options : options
(** [{ max_nodes = 200_000; int_tol = 1e-6; find_first = false;
      workers = 1; time_limit_s = None; lp_dense = false;
      absint = None; branch_rule = Most_fractional }] *)

val find_branch_var : tol:float -> Lp.t -> float array -> Lp.var option
(** Most fractional integer variable, ties broken toward the lowest
    variable index (deterministically, so sequential and parallel runs
    branch identically on identical relaxations). *)

val find_branch_var_widest :
  tol:float -> Lp.t -> float array -> (Lp.var * float) list -> Lp.var option
(** [Bound_width] selection: the fractional integer variable with the
    largest width score, ties toward the lowest index; falls back to
    {!find_branch_var} when no fractional variable was scored. *)

val find_branch_var_ordered :
  tol:float -> Lp.t -> float array -> (Lp.var * float) list -> Lp.var option
(** [Guide_order] selection: the last fractional variable in the
    guide's width list (network layer order, so the deepest crossing
    binary); falls back to {!find_branch_var} when no fractional
    variable was scored. *)

val round_integral : tol:float -> Lp.t -> float array -> float array
(** Snap near-integral integer variables of a relaxation solution to
    exact integers before reporting it as an incumbent. *)

val branch_children : Lp.t -> Lp.var -> float -> Lp.t * Lp.t
(** [branch_children node v x] splits [node] at the fractional value
    [x] of [v] into (preferred, other) child subproblems — preferred is
    the branch nearer [x], which tends to reach integer-feasible points
    sooner.  Shared by the sequential and parallel tree searches. *)

val record_metrics : stats -> unit
(** Fold a finished [stats] record into the global {!Dpv_obs.Metrics}
    registry ([milp.*] counters, the [milp.max_queue_depth] high-water
    gauge and the [simplex.*] counters).  Called automatically at the
    end of every solve (sequential here, parallel in {!Milp_par}); the
    fold-at-end design keeps the hot loop free of atomic traffic and
    makes the campaign-level metric totals equal the sum of per-query
    stats exactly. *)

val observe_lp_s : float -> unit
(** Record one node-LP wall time (seconds) into the [milp.lp_solve_ns]
    latency histogram; shared with {!Milp_par}. *)

val solve : ?options:options -> Lp.t -> result
val solve_with_stats : ?options:options -> Lp.t -> result * stats
