(** Wall-clock timing for solver deadlines and telemetry.

    [Sys.time] measures CPU time summed over every running domain, which
    both over-counts under parallel search and under-counts while a
    domain sleeps.  All solver timing goes through this module instead,
    so a deadline of one second means one second on the wall. *)

val now_s : unit -> float
(** Seconds since an arbitrary epoch.  Only differences are meaningful. *)

val monotonic_ns : unit -> int
(** Never-decreasing nanoseconds since process start (see
    {!Dpv_obs.Mclock}); the time base for trace spans and latency
    histograms.  Deadlines deliberately keep using {!now_s}: wall-clock
    budgets should follow wall-clock adjustments. *)

type deadline
(** An absolute point in time against which work can be checked. *)

val deadline_after : float option -> deadline
(** [deadline_after (Some s)] is the instant [s] seconds from now;
    [deadline_after None] never expires. *)

val expired : deadline -> bool
(** Inclusive: a zero-second budget is expired from the moment it is
    minted, so carved-to-nothing sub-task deadlines deterministically
    skip work instead of racing the clock's resolution. *)

val remaining_s : deadline -> float option
(** Seconds left, clamped at [0.]; [None] for a never-expiring deadline. *)

val carve : deadline -> float option -> float option
(** [carve deadline budget_s] is the wall-clock budget a sub-task may
    spend: the smaller of its own [budget_s] and whatever remains before
    [deadline].  [None] only when both are unbounded.  This is how one
    shared deadline (a campaign budget, or a verify call covering both
    tightening and the MILP) is threaded through phases that each take a
    [time_limit_s]: carve at the moment the phase starts. *)
